//===- support/TraceEvent.cpp - Scoped tracing spans -----------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TraceEvent.h"

#include "support/AtomicFile.h"
#include "support/BuildInfo.h"
#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include <unistd.h>

using namespace cable;

std::atomic<bool> TraceLog::Armed{false};

namespace {

struct Event {
  std::string Name;
  uint64_t StartUs = 0;
  uint64_t DurUs = 0;
  int64_t Arg = 0;
  bool HasArg = false;
};

/// One thread's span ring. Appends come only from the owning thread; the
/// mutex exists to serialize appends against the exporter (spans are
/// coarse — per command, per partition, per fsync — so the uncontended
/// lock is noise).
struct ThreadRing {
  std::mutex Mutex;
  int Tid = 0;
  std::string Name;
  std::vector<Event> Ring;
  size_t Capacity = 0;
  size_t Next = 0;     ///< Ring insertion cursor.
  uint64_t Total = 0;  ///< Spans ever recorded here.
  uint64_t Dropped = 0;
};

struct Global {
  std::mutex Mutex;
  std::vector<std::shared_ptr<ThreadRing>> Rings;
  int NextTid = 1;
  size_t RingCapacity = 65536;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
};

/// Intentionally leaked (spans can be recorded during static teardown).
Global &global() {
  static Global *G = new Global;
  return *G;
}

ThreadRing &myRing() {
  thread_local std::shared_ptr<ThreadRing> Mine = [] {
    Global &G = global();
    auto R = std::make_shared<ThreadRing>();
    std::lock_guard<std::mutex> Lock(G.Mutex);
    R->Tid = G.NextTid++;
    R->Capacity = std::max<size_t>(G.RingCapacity, 4);
    G.Rings.push_back(R);
    return R;
  }();
  return *Mine;
}

} // namespace

void TraceLog::setEnabled(bool On) {
  global(); // Pin the epoch before the first span.
  Armed.store(On, std::memory_order_relaxed);
}

uint64_t TraceLog::nowUs() {
  Global &G = global();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - G.Epoch)
          .count());
}

void TraceLog::setThreadName(std::string Name) {
  ThreadRing &R = myRing();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Name = std::move(Name);
}

void TraceLog::record(std::string Name, uint64_t StartUs, uint64_t DurUs,
                      int64_t Arg, bool HasArg) {
  ThreadRing &R = myRing();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  Event E;
  E.Name = std::move(Name);
  E.StartUs = StartUs;
  E.DurUs = DurUs;
  E.Arg = Arg;
  E.HasArg = HasArg;
  if (R.Ring.size() < R.Capacity) {
    R.Ring.push_back(std::move(E));
  } else {
    // Wraparound: overwrite the oldest slot.
    R.Ring[R.Next] = std::move(E);
    ++R.Dropped;
  }
  R.Next = (R.Next + 1) % R.Capacity;
  ++R.Total;
}

uint64_t TraceLog::spanCount() {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  uint64_t N = 0;
  for (const auto &R : G.Rings) {
    std::lock_guard<std::mutex> RLock(R->Mutex);
    N += R->Total;
  }
  return N;
}

uint64_t TraceLog::droppedCount() {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  uint64_t N = 0;
  for (const auto &R : G.Rings) {
    std::lock_guard<std::mutex> RLock(R->Mutex);
    N += R->Dropped;
  }
  return N;
}

void TraceLog::reset() {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  for (const auto &R : G.Rings) {
    std::lock_guard<std::mutex> RLock(R->Mutex);
    R->Ring.clear();
    R->Next = 0;
    R->Total = 0;
    R->Dropped = 0;
    R->Capacity = std::max<size_t>(G.RingCapacity, 4);
  }
}

void TraceLog::setRingCapacity(size_t Events) {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  G.RingCapacity = std::max<size_t>(Events, 4);
}

std::string TraceLog::exportJson(std::string_view ToolName) {
  Global &G = global();
  int64_t Pid = static_cast<int64_t>(::getpid());

  // Snapshot the ring list, then drain each ring under its own lock.
  std::vector<std::shared_ptr<ThreadRing>> Rings;
  {
    std::lock_guard<std::mutex> Lock(G.Mutex);
    Rings = G.Rings;
  }

  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  uint64_t TotalDropped = 0;
  for (const auto &RP : Rings) {
    std::lock_guard<std::mutex> Lock(RP->Mutex);
    ThreadRing &R = *RP;
    TotalDropped += R.Dropped;
    if (!R.Name.empty()) {
      W.beginObject();
      W.member("name", std::string_view("thread_name"));
      W.member("ph", std::string_view("M"));
      W.member("pid", Pid);
      W.member("tid", static_cast<int64_t>(R.Tid));
      W.key("args");
      W.beginObject();
      W.member("name", std::string_view(R.Name));
      W.endObject();
      W.endObject();
    }
    // Oldest-first: after wraparound the oldest surviving event sits at
    // the insertion cursor.
    size_t N = R.Ring.size();
    size_t First = N < R.Capacity ? 0 : R.Next;
    for (size_t I = 0; I < N; ++I) {
      const Event &E = R.Ring[(First + I) % N];
      W.beginObject();
      W.member("name", std::string_view(E.Name));
      W.member("cat", std::string_view("cable"));
      W.member("ph", std::string_view("X"));
      W.member("ts", E.StartUs);
      W.member("dur", E.DurUs);
      W.member("pid", Pid);
      W.member("tid", static_cast<int64_t>(R.Tid));
      if (E.HasArg) {
        W.key("args");
        W.beginObject();
        W.member("n", E.Arg);
        W.endObject();
      }
      W.endObject();
    }
  }
  W.endArray();
  W.key("otherData");
  W.beginObject();
  W.member("tool", ToolName);
  W.member("version", std::string_view(buildinfo::kVersion));
  W.member("git_sha", std::string_view(buildinfo::kGitSha));
  W.member("build_type", std::string_view(buildinfo::kBuildType));
  W.member("sanitize", std::string_view(buildinfo::kSanitize));
  W.member("dropped_events", TotalDropped);
  W.endObject();
  W.member("displayTimeUnit", std::string_view("ms"));
  W.endObject();
  return W.take();
}

Status TraceLog::writeJson(const std::string &Path,
                           std::string_view ToolName) {
  return AtomicFile::write(Path, exportJson(ToolName));
}
