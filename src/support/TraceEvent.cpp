//===- support/TraceEvent.cpp - Scoped tracing spans -----------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TraceEvent.h"

#include "support/AtomicFile.h"
#include "support/BuildInfo.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include <unistd.h>

using namespace cable;

std::atomic<bool> TraceLog::Armed{false};
std::atomic<bool> TraceLog::StacksArmed{false};

namespace {

/// Satellite of the overwrite-oldest ring policy: truncation is visible
/// in --stats and run reports, never silent.
Metrics::Counter &SpansDropped = Metrics::counter("trace.spans-dropped");

struct Event {
  std::string Name;
  uint64_t StartUs = 0;
  uint64_t DurUs = 0;
  int64_t Arg = 0;
  bool HasArg = false;
  uint8_t FlowPhase = 0; ///< 0 = span; 's'/'t'/'f' = flow instant
  uint64_t FlowId = 0;
};

/// A span adopted from another process (a shard worker's flush).
struct ForeignSpan {
  int64_t Pid = 0;
  TraceLog::RawSpan S;
};

/// One thread's span ring. Appends come only from the owning thread; the
/// mutex exists to serialize appends against the exporter (spans are
/// coarse — per command, per partition, per fsync — so the uncontended
/// lock is noise).
struct ThreadRing {
  std::mutex Mutex;
  int Tid = 0;
  std::string Name;
  std::vector<Event> Ring;
  size_t Capacity = 0;
  size_t Next = 0;     ///< Ring insertion cursor.
  uint64_t Total = 0;  ///< Spans ever recorded here.
  uint64_t Dropped = 0;
};

struct Global {
  std::mutex Mutex;
  std::vector<std::shared_ptr<ThreadRing>> Rings;
  int NextTid = 1;
  size_t RingCapacity = 65536;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  /// Spans ingested from worker processes, plus their track names.
  /// Bounded so a chatty fleet cannot grow the supervisor without limit.
  std::vector<ForeignSpan> Foreign;
  std::vector<std::pair<int64_t, std::string>> ForeignProcs;
  size_t ForeignCapacity = 1 << 20;
  uint64_t ForeignDropped = 0;
};

/// Intentionally leaked (spans can be recorded during static teardown).
Global &global() {
  static Global *G = new Global;
  return *G;
}

ThreadRing &myRing() {
  thread_local std::shared_ptr<ThreadRing> Mine = [] {
    Global &G = global();
    auto R = std::make_shared<ThreadRing>();
    std::lock_guard<std::mutex> Lock(G.Mutex);
    R->Tid = G.NextTid++;
    R->Capacity = std::max<size_t>(G.RingCapacity, 4);
    G.Rings.push_back(R);
    return R;
  }();
  return *Mine;
}

} // namespace

void TraceLog::setEnabled(bool On) {
  global(); // Pin the epoch before the first span.
  Armed.store(On, std::memory_order_relaxed);
}

uint64_t TraceLog::nowUs() {
  Global &G = global();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - G.Epoch)
          .count());
}

void TraceLog::setThreadName(std::string Name) {
  ThreadRing &R = myRing();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Name = std::move(Name);
}

namespace {

void appendEvent(Event E) {
  ThreadRing &R = myRing();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  if (R.Ring.size() < R.Capacity) {
    R.Ring.push_back(std::move(E));
  } else {
    // Wraparound: overwrite the oldest slot.
    R.Ring[R.Next] = std::move(E);
    ++R.Dropped;
    SpansDropped.add();
  }
  R.Next = (R.Next + 1) % R.Capacity;
  ++R.Total;
}

} // namespace

void TraceLog::record(std::string Name, uint64_t StartUs, uint64_t DurUs,
                      int64_t Arg, bool HasArg) {
  Event E;
  E.Name = std::move(Name);
  E.StartUs = StartUs;
  E.DurUs = DurUs;
  E.Arg = Arg;
  E.HasArg = HasArg;
  appendEvent(std::move(E));
}

void TraceLog::recordFlow(uint64_t FlowId, char Phase) {
  if (!enabled())
    return;
  Event E;
  E.Name = "shard-flow";
  E.StartUs = nowUs();
  E.FlowPhase = static_cast<uint8_t>(Phase);
  E.FlowId = FlowId;
  appendEvent(std::move(E));
}

std::vector<TraceLog::RawSpan> TraceLog::drainSpans() {
  Global &G = global();
  std::vector<std::shared_ptr<ThreadRing>> Rings;
  {
    std::lock_guard<std::mutex> Lock(G.Mutex);
    Rings = G.Rings;
  }
  std::vector<RawSpan> Out;
  for (const auto &RP : Rings) {
    std::lock_guard<std::mutex> Lock(RP->Mutex);
    ThreadRing &R = *RP;
    size_t N = R.Ring.size();
    size_t First = N < R.Capacity ? 0 : R.Next;
    for (size_t I = 0; I < N; ++I) {
      Event &E = R.Ring[(First + I) % N];
      RawSpan S;
      S.Name = std::move(E.Name);
      S.StartUs = E.StartUs;
      S.DurUs = E.DurUs;
      S.Arg = E.Arg;
      S.HasArg = E.HasArg;
      S.FlowPhase = E.FlowPhase;
      S.FlowId = E.FlowId;
      S.Tid = R.Tid;
      S.ThreadName = R.Name;
      Out.push_back(std::move(S));
    }
    R.Ring.clear();
    R.Next = 0;
  }
  return Out;
}

void TraceLog::ingestRemote(int64_t Pid, std::string_view ProcessName,
                            std::vector<RawSpan> Spans, uint64_t DroppedDelta) {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  bool Known = false;
  for (const auto &[P, Name] : G.ForeignProcs)
    Known = Known || P == Pid;
  if (!Known)
    G.ForeignProcs.emplace_back(Pid, std::string(ProcessName));
  G.ForeignDropped += DroppedDelta;
  for (RawSpan &S : Spans) {
    if (G.Foreign.size() >= G.ForeignCapacity) {
      ++G.ForeignDropped;
      SpansDropped.add();
      continue;
    }
    ForeignSpan F;
    F.Pid = Pid;
    F.S = std::move(S);
    G.Foreign.push_back(std::move(F));
  }
}

void TraceLog::resetAfterFork() {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  for (const auto &R : G.Rings) {
    std::lock_guard<std::mutex> RLock(R->Mutex);
    R->Ring.clear();
    R->Next = 0;
    R->Total = 0;
    R->Dropped = 0;
  }
  G.Foreign.clear();
  G.ForeignProcs.clear();
  G.ForeignDropped = 0;
}

uint64_t TraceLog::spanCount() {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  uint64_t N = 0;
  for (const auto &R : G.Rings) {
    std::lock_guard<std::mutex> RLock(R->Mutex);
    N += R->Total;
  }
  return N;
}

uint64_t TraceLog::droppedCount() {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  uint64_t N = G.ForeignDropped; // Remote losses reported via ingestRemote.
  for (const auto &R : G.Rings) {
    std::lock_guard<std::mutex> RLock(R->Mutex);
    N += R->Dropped;
  }
  return N;
}

void TraceLog::reset() {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  for (const auto &R : G.Rings) {
    std::lock_guard<std::mutex> RLock(R->Mutex);
    R->Ring.clear();
    R->Next = 0;
    R->Total = 0;
    R->Dropped = 0;
    R->Capacity = std::max<size_t>(G.RingCapacity, 4);
  }
  G.Foreign.clear();
  G.ForeignProcs.clear();
  G.ForeignDropped = 0;
}

void TraceLog::setRingCapacity(size_t Events) {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  G.RingCapacity = std::max<size_t>(Events, 4);
}

//===----------------------------------------------------------------------===//
// Active-span stacks. All storage is fixed and pre-allocated (the global
// slot array is static, the per-thread stacks are leaked heap blocks
// registered with a release-stored count), so a signal handler can walk
// every thread's stack with plain loads. Depth is published with release
// stores after the name bytes land; a racing reader sees at worst a stale
// frame, never a torn one.
//===----------------------------------------------------------------------===//

namespace {

struct SpanStack {
  uint32_t Tid = 0;
  char ThreadName[TraceLog::kCrashStackNameBytes] = {0};
  std::atomic<uint32_t> Depth{0};
  char Frames[TraceLog::kCrashStackMaxDepth]
             [TraceLog::kCrashStackNameBytes] = {{0}};
};

constexpr size_t kMaxSpanStacks = 256;
SpanStack *GSpanStacks[kMaxSpanStacks];
std::atomic<size_t> GNumSpanStacks{0};

thread_local SpanStack *MySpanStack = nullptr;

void copyFrameName(char *Dst, std::string_view Name) {
  size_t N = std::min(Name.size(), TraceLog::kCrashStackNameBytes - 1);
  std::memcpy(Dst, Name.data(), N);
  Dst[N] = '\0';
}

SpanStack *mySpanStack() {
  if (MySpanStack)
    return MySpanStack;
  // Resolve the ring first (it takes the global lock itself): the stack
  // shares the ring's tid and thread name so dumps and traces correlate.
  ThreadRing &Ring = myRing();
  auto *S = new SpanStack; // leaked: dumps may outlive the thread
  S->Tid = static_cast<uint32_t>(Ring.Tid);
  {
    std::lock_guard<std::mutex> Lock(Ring.Mutex);
    copyFrameName(S->ThreadName, Ring.Name);
  }
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  size_t N = GNumSpanStacks.load(std::memory_order_relaxed);
  if (N >= kMaxSpanStacks) {
    delete S;
    return nullptr; // beyond any plausible thread count; frames just absent
  }
  GSpanStacks[N] = S;
  GNumSpanStacks.store(N + 1, std::memory_order_release);
  MySpanStack = S;
  return S;
}

} // namespace

void TraceLog::setStackCapture(bool On) {
  global(); // pin the epoch/registry like setEnabled does
  StacksArmed.store(On, std::memory_order_relaxed);
}

bool TraceLog::pushCrashStack(std::string_view Name) {
  SpanStack *S = mySpanStack();
  if (!S)
    return false;
  uint32_t D = S->Depth.load(std::memory_order_relaxed);
  if (D >= kCrashStackMaxDepth)
    return false; // deeper frames silently absent from dumps
  copyFrameName(S->Frames[D], Name);
  S->Depth.store(D + 1, std::memory_order_release);
  return true;
}

void TraceLog::popCrashStack() {
  SpanStack *S = MySpanStack;
  if (!S)
    return;
  uint32_t D = S->Depth.load(std::memory_order_relaxed);
  if (D > 0)
    S->Depth.store(D - 1, std::memory_order_release);
}

size_t TraceLog::crashStackCount() {
  return GNumSpanStacks.load(std::memory_order_acquire);
}

bool TraceLog::crashStackRead(size_t I, CrashStackView &Out) {
  if (I >= GNumSpanStacks.load(std::memory_order_acquire))
    return false;
  const SpanStack *S = GSpanStacks[I];
  Out.Tid = S->Tid;
  Out.ThreadName = S->ThreadName;
  uint32_t D = S->Depth.load(std::memory_order_acquire);
  Out.Depth = D < kCrashStackMaxDepth ? D : kCrashStackMaxDepth;
  Out.Frames = &S->Frames[0][0];
  return true;
}

namespace {

/// One trace event, local or foreign. Flow instants ('s'/'t'/'f') bind
/// by (cat, id) to the slice enclosing their timestamp on their track;
/// a finish ('f') needs bp:"e" to attach to the enclosing slice.
void writeEventJson(JsonWriter &W, const Event &E, int64_t Pid, int Tid) {
  W.beginObject();
  W.member("name", std::string_view(E.Name));
  if (E.FlowPhase == 0) {
    W.member("cat", std::string_view("cable"));
    W.member("ph", std::string_view("X"));
    W.member("ts", E.StartUs);
    W.member("dur", E.DurUs);
  } else {
    char Ph[2] = {static_cast<char>(E.FlowPhase), 0};
    W.member("cat", std::string_view("shard"));
    W.member("ph", std::string_view(Ph, 1));
    W.member("id", E.FlowId);
    W.member("ts", E.StartUs);
    if (E.FlowPhase == 'f')
      W.member("bp", std::string_view("e"));
  }
  W.member("pid", Pid);
  W.member("tid", static_cast<int64_t>(Tid));
  if (E.HasArg) {
    W.key("args");
    W.beginObject();
    W.member("n", E.Arg);
    W.endObject();
  }
  W.endObject();
}

void writeMetadataJson(JsonWriter &W, std::string_view MetaName, int64_t Pid,
                       int64_t Tid, bool HasTid, std::string_view Name) {
  W.beginObject();
  W.member("name", MetaName);
  W.member("ph", std::string_view("M"));
  W.member("pid", Pid);
  if (HasTid)
    W.member("tid", Tid);
  W.key("args");
  W.beginObject();
  W.member("name", Name);
  W.endObject();
  W.endObject();
}

} // namespace

std::string TraceLog::exportJson(std::string_view ToolName) {
  Global &G = global();
  int64_t Pid = static_cast<int64_t>(::getpid());

  // Snapshot the ring list, then drain each ring under its own lock.
  std::vector<std::shared_ptr<ThreadRing>> Rings;
  {
    std::lock_guard<std::mutex> Lock(G.Mutex);
    Rings = G.Rings;
  }

  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  writeMetadataJson(W, "process_name", Pid, 0, false, ToolName);
  uint64_t TotalDropped = 0;
  for (const auto &RP : Rings) {
    std::lock_guard<std::mutex> Lock(RP->Mutex);
    ThreadRing &R = *RP;
    TotalDropped += R.Dropped;
    if (!R.Name.empty())
      writeMetadataJson(W, "thread_name", Pid, R.Tid, true, R.Name);
    // Oldest-first: after wraparound the oldest surviving event sits at
    // the insertion cursor.
    size_t N = R.Ring.size();
    size_t First = N < R.Capacity ? 0 : R.Next;
    for (size_t I = 0; I < N; ++I)
      writeEventJson(W, R.Ring[(First + I) % N], Pid, R.Tid);
  }
  // Spans ingested from worker processes render as their own pid tracks
  // on the same steady-clock timeline (fork preserves the epoch).
  {
    std::lock_guard<std::mutex> Lock(G.Mutex);
    TotalDropped += G.ForeignDropped;
    for (const auto &[FPid, Name] : G.ForeignProcs)
      writeMetadataJson(W, "process_name", FPid, 0, false, Name);
    std::vector<std::pair<int64_t, int>> NamedThreads;
    for (const ForeignSpan &F : G.Foreign) {
      if (!F.S.ThreadName.empty()) {
        std::pair<int64_t, int> Key(F.Pid, F.S.Tid);
        if (std::find(NamedThreads.begin(), NamedThreads.end(), Key) ==
            NamedThreads.end()) {
          NamedThreads.push_back(Key);
          writeMetadataJson(W, "thread_name", F.Pid, F.S.Tid, true,
                            F.S.ThreadName);
        }
      }
      Event E;
      E.Name = F.S.Name;
      E.StartUs = F.S.StartUs;
      E.DurUs = F.S.DurUs;
      E.Arg = F.S.Arg;
      E.HasArg = F.S.HasArg;
      E.FlowPhase = F.S.FlowPhase;
      E.FlowId = F.S.FlowId;
      writeEventJson(W, E, F.Pid, F.S.Tid);
    }
  }
  W.endArray();
  W.key("otherData");
  W.beginObject();
  W.member("tool", ToolName);
  W.member("version", std::string_view(buildinfo::kVersion));
  W.member("git_sha", std::string_view(buildinfo::kGitSha));
  W.member("build_type", std::string_view(buildinfo::kBuildType));
  W.member("sanitize", std::string_view(buildinfo::kSanitize));
  W.member("dropped_events", TotalDropped);
  W.endObject();
  W.member("displayTimeUnit", std::string_view("ms"));
  W.endObject();
  return W.take();
}

Status TraceLog::writeJson(const std::string &Path,
                           std::string_view ToolName) {
  return AtomicFile::write(Path, exportJson(ToolName));
}
