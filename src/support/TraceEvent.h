//===- support/TraceEvent.h - Scoped tracing spans --------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped RAII tracing spans exported as Chrome trace-event JSON, so a
/// whole cable-cli or spec-lint run can be opened in chrome://tracing or
/// Perfetto and read like a flame chart: lattice construction on its pool
/// workers, journal fsyncs, session commands — each on the thread that
/// actually executed it.
///
///   { TraceSpan Span("lattice-build"); buildLattice(...); }
///
/// Design:
///
///  - Disarmed (the default), a span costs one relaxed atomic load; no
///    clock sample, no allocation. Arm with TraceLog::setEnabled(true)
///    (done by `--trace-out`).
///  - Armed, each completed span appends one event to a ring buffer owned
///    by its thread (a per-thread mutex serializes only against the
///    exporter, never other recording threads). When a ring fills, the
///    oldest events are overwritten and counted as dropped — tracing
///    never grows without bound and never blocks the pipeline.
///  - Timestamps are steady-clock microseconds relative to the first
///    armed use in the process; thread ids are small dense integers
///    assigned in first-use order, with optional human names
///    (TraceLog::setThreadName) emitted as metadata events.
///
/// The export format is the Chrome trace-event JSON object form:
/// {"traceEvents": [...], "otherData": {...build info...}} with "X"
/// (complete) duration events — accepted by chrome://tracing, Perfetto,
/// and speedscope. See docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_TRACEEVENT_H
#define CABLE_SUPPORT_TRACEEVENT_H

#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cable {

/// Process-wide span log.
class TraceLog {
public:
  /// True when span recording is armed (the TraceSpan fast-path gate).
  static bool enabled() {
#ifdef CABLE_NO_INSTRUMENT
    return false;
#else
    return Armed.load(std::memory_order_relaxed);
#endif
  }

  static void setEnabled(bool On);

  /// Names the calling thread in the exported trace (e.g. "pool-worker-2").
  static void setThreadName(std::string Name);

  /// One recorded span (or instant flow event) in raw process-neutral
  /// form — the unit the shard telemetry frame carries across the fork
  /// boundary. FlowPhase 0 is a plain duration span; 's'/'t'/'f' mark the
  /// Chrome flow-event instants that stitch a block's dispatch → worker
  /// compute → merge into one arrow across process tracks.
  struct RawSpan {
    std::string Name;
    uint64_t StartUs = 0;
    uint64_t DurUs = 0;
    int64_t Arg = 0;
    bool HasArg = false;
    uint8_t FlowPhase = 0;
    uint64_t FlowId = 0;
    int Tid = 0;
    std::string ThreadName;
  };

  /// Records an instant flow event on the calling thread. \p Phase is
  /// 's' (flow start), 't' (step), or 'f' (finish); events sharing a
  /// \p FlowId render as one arrow. Place the call inside the span the
  /// arrow should attach to. Disarmed cost: one relaxed load.
  static void recordFlow(uint64_t FlowId, char Phase);

  /// Removes and returns every buffered event from this process's rings,
  /// oldest first (the worker side of a telemetry flush). Thread ids,
  /// names, capacities, and cumulative drop counters persist.
  static std::vector<RawSpan> drainSpans();

  /// Adopts spans drained from another process: they export under
  /// \p Pid with a process_name metadata row naming the track (first
  /// name seen per pid wins). Foreign storage is bounded; overflow is
  /// counted as dropped, never fatal. \p DroppedDelta folds the remote
  /// process's own ring-wraparound losses into this process's dropped
  /// total so the exported dropped_events figure spans the whole build.
  static void ingestRemote(int64_t Pid, std::string_view ProcessName,
                           std::vector<RawSpan> Spans,
                           uint64_t DroppedDelta = 0);

  /// Forked children inherit the parent's ring contents (and any
  /// ingested foreign spans) by address-space copy; Subprocess::spawn
  /// calls this first thing in the child so worker flushes carry only the
  /// worker's own spans. The epoch, ring registration, thread ids, and
  /// names survive — fork preserves the steady-clock timeline, so parent
  /// and child timestamps stay directly comparable.
  static void resetAfterFork();

  /// Renders every recorded span as a Chrome trace-event JSON document.
  /// \p ToolName goes into otherData along with the build stamp.
  static std::string exportJson(std::string_view ToolName);

  /// exportJson written atomically to \p Path (AtomicFile).
  static Status writeJson(const std::string &Path, std::string_view ToolName);

  /// Total spans recorded (across all threads, including overwritten).
  static uint64_t spanCount();

  /// Spans lost to ring-buffer wraparound.
  static uint64_t droppedCount();

  /// Drops every recorded span (local and ingested) and resets drop
  /// counters; thread ids and names persist. Ring capacity changes take
  /// effect for rings created after the call (test isolation).
  static void reset();

  /// Per-thread ring capacity in events for rings created afterwards
  /// (default 65536). Minimum 4.
  static void setRingCapacity(size_t Events);

  //===--------------------------------------------------------------------===//
  // Active-span stacks (the flight recorder's "where was every thread").
  //
  // Armed by CrashDump::install via setStackCapture: each live TraceSpan
  // pushes its name onto a fixed-storage per-thread stack at construction
  // and pops at destruction, so a fatal-signal dump can report the active
  // span stack of every thread without touching the heap. Disarmed (the
  // default) the cost is one extra relaxed load per span.
  //===--------------------------------------------------------------------===//

  static constexpr size_t kCrashStackMaxDepth = 24;
  static constexpr size_t kCrashStackNameBytes = 48;

  static bool stackCaptureEnabled() {
#ifdef CABLE_NO_INSTRUMENT
    return false;
#else
    return StacksArmed.load(std::memory_order_relaxed);
#endif
  }
  static void setStackCapture(bool On);

  /// One thread's active spans, read async-signal-safely: \p Frames
  /// points at \p Depth NUL-terminated names spaced kCrashStackNameBytes
  /// apart, innermost last. The storage is fixed and never freed; a
  /// racing push/pop can at worst show a stale frame, never a torn
  /// pointer.
  struct CrashStackView {
    uint32_t Tid = 0;
    const char *ThreadName = nullptr; ///< may be empty, never null
    uint32_t Depth = 0;
    const char *Frames = nullptr;
  };

  /// Async-signal-safe: number of registered per-thread stacks.
  static size_t crashStackCount();
  /// Async-signal-safe: fills \p Out for stack \p I (< crashStackCount()).
  static bool crashStackRead(size_t I, CrashStackView &Out);

private:
  friend class TraceSpan;
  static void record(std::string Name, uint64_t StartUs, uint64_t DurUs,
                     int64_t Arg, bool HasArg);
  static uint64_t nowUs();
  static bool pushCrashStack(std::string_view Name);
  static void popCrashStack();

  static std::atomic<bool> Armed;
  static std::atomic<bool> StacksArmed;
};

/// One scoped span. Records [construction, destruction) on the current
/// thread when tracing is armed; otherwise costs one relaxed load.
class TraceSpan {
public:
  explicit TraceSpan(std::string_view Name) : TraceSpan(Name, 0, false) {}

  /// A span with one integer argument (partition size, byte count, ...),
  /// exported as args.n.
  TraceSpan(std::string_view Name, int64_t Arg) : TraceSpan(Name, Arg, true) {}

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  ~TraceSpan() {
    if (Pushed)
      TraceLog::popCrashStack();
    if (!Active)
      return;
    uint64_t End = TraceLog::nowUs();
    TraceLog::record(std::move(Name), StartUs, End - StartUs, Arg, HasArg);
  }

private:
  TraceSpan(std::string_view Name, int64_t Arg, bool HasArg)
      : Active(TraceLog::enabled()), Arg(Arg), HasArg(HasArg) {
    if (Active) {
      this->Name.assign(Name);
      StartUs = TraceLog::nowUs();
    }
    if (TraceLog::stackCaptureEnabled())
      Pushed = TraceLog::pushCrashStack(Name);
  }

  bool Active;
  bool Pushed = false;
  int64_t Arg;
  bool HasArg;
  uint64_t StartUs = 0;
  std::string Name;
};

} // namespace cable

#endif // CABLE_SUPPORT_TRACEEVENT_H
