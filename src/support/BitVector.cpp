//===- support/BitVector.cpp - Dynamic bit set ----------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

#include "support/simd/Kernels.h"

#include <bit>

using namespace cable;

void BitVector::clearUnusedBits() {
  size_t Tail = NumBits % 64;
  if (Tail != 0 && !Words.empty())
    Words.back() &= (uint64_t(1) << Tail) - 1;
}

void BitVector::resize(size_t NewSize) {
  NumBits = NewSize;
  Words.resize((NewSize + 63) / 64, 0);
  clearUnusedBits();
}

void BitVector::setAll() {
  for (uint64_t &W : Words)
    W = ~uint64_t(0);
  clearUnusedBits();
}

size_t BitVector::count() const {
  if (Words.size() == 1)
    return static_cast<size_t>(std::popcount(Words[0] & tailMask()));
  return simd::ops().Popcount(Words.data(), Words.size(), tailMask());
}

bool BitVector::none() const {
  // A & A intersects iff any bit is set; the kernel masks the tail so a
  // dirty tail can never make an empty set look populated.
  if (Words.size() == 1)
    return (Words[0] & tailMask()) == 0;
  return !simd::ops().Intersects(Words.data(), Words.data(), Words.size(),
                                 tailMask());
}

BitVector &BitVector::operator&=(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  if (Words.size() == 1)
    Words[0] &= RHS.Words[0];
  else
    simd::ops().AndInto(Words.data(), RHS.Words.data(), Words.size());
  clearUnusedBits();
  assert(tailIsClean());
  return *this;
}

BitVector &BitVector::operator|=(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  if (Words.size() == 1)
    Words[0] |= RHS.Words[0];
  else
    simd::ops().OrInto(Words.data(), RHS.Words.data(), Words.size());
  clearUnusedBits();
  assert(tailIsClean());
  return *this;
}

BitVector &BitVector::operator^=(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  if (Words.size() == 1)
    Words[0] ^= RHS.Words[0];
  else
    simd::ops().XorInto(Words.data(), RHS.Words.data(), Words.size());
  clearUnusedBits();
  assert(tailIsClean());
  return *this;
}

BitVector &BitVector::andNot(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  if (Words.size() == 1)
    Words[0] &= ~RHS.Words[0];
  else
    simd::ops().AndNotInto(Words.data(), RHS.Words.data(), Words.size());
  clearUnusedBits();
  assert(tailIsClean());
  return *this;
}

void BitVector::flipAll() {
  for (uint64_t &W : Words)
    W = ~W;
  clearUnusedBits();
}

bool BitVector::isSubsetOf(const BitVector &RHS) const {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  if (Words.size() == 1)
    return ((Words[0] & ~RHS.Words[0]) & tailMask()) == 0;
  return simd::ops().IsSubsetOf(Words.data(), RHS.Words.data(), Words.size(),
                                tailMask());
}

bool BitVector::intersects(const BitVector &RHS) const {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  if (Words.size() == 1)
    return ((Words[0] & RHS.Words[0]) & tailMask()) != 0;
  return simd::ops().Intersects(Words.data(), RHS.Words.data(), Words.size(),
                                tailMask());
}

size_t BitVector::findFirst() const {
  for (size_t I = 0; I < Words.size(); ++I)
    if (Words[I] != 0)
      return I * 64 + static_cast<size_t>(std::countr_zero(Words[I]));
  return npos;
}

size_t BitVector::findNext(size_t Prev) const {
  size_t Next = Prev + 1;
  if (Next >= NumBits)
    return npos;
  size_t WordIdx = Next / 64;
  uint64_t Masked = Words[WordIdx] & (~uint64_t(0) << (Next % 64));
  if (Masked != 0)
    return WordIdx * 64 + static_cast<size_t>(std::countr_zero(Masked));
  for (size_t I = WordIdx + 1; I < Words.size(); ++I)
    if (Words[I] != 0)
      return I * 64 + static_cast<size_t>(std::countr_zero(Words[I]));
  return npos;
}

std::vector<size_t> BitVector::toIndices() const {
  std::vector<size_t> Out;
  for (size_t I : *this)
    Out.push_back(I);
  return Out;
}

size_t BitVector::hashValue() const {
  // FNV-1a over the words, mixed with the universe size.
  uint64_t H = 0xcbf29ce484222325ULL ^ NumBits;
  for (uint64_t W : Words) {
    H ^= W;
    H *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(H);
}

namespace cable {

BitVector operator&(const BitVector &A, const BitVector &B) {
  BitVector R = A;
  R &= B;
  return R;
}

BitVector operator|(const BitVector &A, const BitVector &B) {
  BitVector R = A;
  R |= B;
  return R;
}

} // namespace cable
