//===- support/BitVector.cpp - Dynamic bit set ----------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

#include <bit>

using namespace cable;

void BitVector::clearUnusedBits() {
  size_t Tail = NumBits % 64;
  if (Tail != 0 && !Words.empty())
    Words.back() &= (uint64_t(1) << Tail) - 1;
}

void BitVector::resize(size_t NewSize) {
  NumBits = NewSize;
  Words.resize((NewSize + 63) / 64, 0);
  clearUnusedBits();
}

void BitVector::setAll() {
  for (uint64_t &W : Words)
    W = ~uint64_t(0);
  clearUnusedBits();
}

size_t BitVector::count() const {
  size_t N = 0;
  for (uint64_t W : Words)
    N += static_cast<size_t>(std::popcount(W));
  return N;
}

bool BitVector::none() const {
  for (uint64_t W : Words)
    if (W != 0)
      return false;
  return true;
}

BitVector &BitVector::operator&=(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    Words[I] &= RHS.Words[I];
  return *this;
}

BitVector &BitVector::operator|=(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    Words[I] |= RHS.Words[I];
  return *this;
}

BitVector &BitVector::operator^=(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    Words[I] ^= RHS.Words[I];
  return *this;
}

BitVector &BitVector::andNot(const BitVector &RHS) {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    Words[I] &= ~RHS.Words[I];
  return *this;
}

void BitVector::flipAll() {
  for (uint64_t &W : Words)
    W = ~W;
  clearUnusedBits();
}

bool BitVector::isSubsetOf(const BitVector &RHS) const {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    if ((Words[I] & ~RHS.Words[I]) != 0)
      return false;
  return true;
}

bool BitVector::intersects(const BitVector &RHS) const {
  assert(NumBits == RHS.NumBits && "universe size mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    if ((Words[I] & RHS.Words[I]) != 0)
      return true;
  return false;
}

size_t BitVector::findFirst() const {
  for (size_t I = 0; I < Words.size(); ++I)
    if (Words[I] != 0)
      return I * 64 + static_cast<size_t>(std::countr_zero(Words[I]));
  return npos;
}

size_t BitVector::findNext(size_t Prev) const {
  size_t Next = Prev + 1;
  if (Next >= NumBits)
    return npos;
  size_t WordIdx = Next / 64;
  uint64_t Masked = Words[WordIdx] & (~uint64_t(0) << (Next % 64));
  if (Masked != 0)
    return WordIdx * 64 + static_cast<size_t>(std::countr_zero(Masked));
  for (size_t I = WordIdx + 1; I < Words.size(); ++I)
    if (Words[I] != 0)
      return I * 64 + static_cast<size_t>(std::countr_zero(Words[I]));
  return npos;
}

std::vector<size_t> BitVector::toIndices() const {
  std::vector<size_t> Out;
  for (size_t I : *this)
    Out.push_back(I);
  return Out;
}

size_t BitVector::hashValue() const {
  // FNV-1a over the words, mixed with the universe size.
  uint64_t H = 0xcbf29ce484222325ULL ^ NumBits;
  for (uint64_t W : Words) {
    H ^= W;
    H *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(H);
}

namespace cable {

BitVector operator&(const BitVector &A, const BitVector &B) {
  BitVector R = A;
  R &= B;
  return R;
}

BitVector operator|(const BitVector &A, const BitVector &B) {
  BitVector R = A;
  R |= B;
  return R;
}

} // namespace cable
