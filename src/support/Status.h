//===- support/Status.h - Recoverable-error results -------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Status / StatusOr<T>: the recoverable-error counterpart to Error.h's
/// fatal machinery. A Status is either ok or carries one Diagnostic; a
/// StatusOr<T> is a Status plus, when ok, a value. The library still never
/// throws — budget exhaustion, malformed user input, and cancellation flow
/// back to callers through these types, while genuine invariant violations
/// keep using CABLE_UNREACHABLE.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_STATUS_H
#define CABLE_SUPPORT_STATUS_H

#include "support/Diagnostic.h"

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cable {

/// Ok, or exactly one Diagnostic describing why the operation failed.
class Status {
public:
  /// Default-constructs the ok status.
  Status() = default;

  static Status ok() { return Status(); }

  /// Builds a failed status from a full diagnostic.
  static Status error(Diagnostic D) {
    Status S;
    S.Diag = std::move(D);
    return S;
  }

  /// Builds a failed status with just a code and a message.
  static Status error(ErrorCode Code, std::string Message) {
    Diagnostic D;
    D.Level = Severity::Error;
    D.Code = Code;
    D.Message = std::move(Message);
    return error(std::move(D));
  }

  bool isOk() const { return !Diag.has_value(); }
  explicit operator bool() const { return isOk(); }

  ErrorCode code() const { return Diag ? Diag->Code : ErrorCode::Ok; }

  /// The diagnostic message, or "" when ok.
  const std::string &message() const {
    static const std::string Empty;
    return Diag ? Diag->Message : Empty;
  }

  /// The full diagnostic. Only valid on a failed status.
  const Diagnostic &diagnostic() const {
    assert(Diag && "diagnostic() on an ok Status");
    return *Diag;
  }

  /// "ok", or the rendered diagnostic.
  std::string render() const { return Diag ? Diag->render() : "ok"; }

private:
  std::optional<Diagnostic> Diag;
};

/// A Status that, when ok, also carries a value. Minimal by design: enough
/// for Cable's pipeline results, not a general-purpose monad.
template <typename T> class StatusOr {
public:
  /*implicit*/ StatusOr(T Value) : Val(std::move(Value)) {}
  /*implicit*/ StatusOr(Status S) : Stat(std::move(S)) {
    assert(!Stat.isOk() && "StatusOr constructed from an ok Status "
                           "without a value");
  }

  bool isOk() const { return Stat.isOk(); }
  explicit operator bool() const { return isOk(); }

  const Status &status() const { return Stat; }

  T &value() {
    assert(Val && "value() on a failed StatusOr");
    return *Val;
  }
  const T &value() const {
    assert(Val && "value() on a failed StatusOr");
    return *Val;
  }

  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

private:
  Status Stat;
  std::optional<T> Val;
};

} // namespace cable

#endif // CABLE_SUPPORT_STATUS_H
