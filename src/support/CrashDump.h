//===- support/CrashDump.h - Fatal-path flight recorder ---------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The black box: an async-signal-safe dumper that leaves a
/// `cable-crashdump/1` JSON document when a Cable process dies badly —
/// fatal signals (SIGSEGV/SIGABRT/SIGBUS), std::terminate, the tools'
/// exit-4 unhandled-exception path, and injected `crash`-mode failpoints.
///
/// The dump carries everything a post-mortem needs and nothing that
/// requires a live process: the last-N structured log records (from
/// Log's pre-rendered crash ring), the active span stack of every thread
/// (TraceLog's fixed-storage stacks), a metrics snapshot (the crash
/// index: counters, gauge value/high, histogram count/sum/max), and the
/// BuildInfo stamp. Everything on the dump path is arranged at install
/// time — the output fd is pre-opened, the document prefix is
/// pre-formatted — so the fatal path itself is write(2) loops over
/// static buffers.
///
/// Enabled by the CABLE_CRASH_DIR environment variable (the tools call
/// install() unconditionally; without the variable it is a no-op). The
/// dump lands at `$CABLE_CRASH_DIR/crash.<pid>.json`; forked shard
/// workers re-point at their own pid (Subprocess::spawn calls
/// reinstallAfterFork), and the supervisor collects nonempty worker
/// dumps into the run report's `sharded.crash_dumps` array. A clean exit
/// unlinks the (empty) file via disarm().
///
/// Satellite duty: registerSignalArtifacts wires the SIGINT/SIGTERM
/// fast-exit path, so an interrupted run still flushes `--metrics-out`,
/// `--run-report`, and `--log-out` through the same signal-safe writer
/// instead of dying observability-blind.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_CRASHDUMP_H
#define CABLE_SUPPORT_CRASHDUMP_H

#include <string>
#include <vector>

namespace cable {

class CrashDump {
public:
  /// Installs the recorder when $CABLE_CRASH_DIR is set: pre-opens the
  /// dump file, pre-formats the document prefix, hooks
  /// SIGSEGV/SIGABRT/SIGBUS and std::terminate, and arms Log's crash
  /// ring and TraceLog's span-stack capture. Without the variable this
  /// is a no-op. Call once, early, after observability flags are parsed.
  static void install(const char *Tool);

  /// install() with an explicit directory (tests).
  static void installAt(const char *Tool, const char *Dir);

  static bool installed();

  /// The crash directory ("" when not installed) — the supervisor uses
  /// it to collect worker dumps.
  static const char *directory();

  /// `<dir>/crash.<pid>.json`, or "" when not installed.
  static std::string dumpPathForPid(int Pid);

  /// Forked children call this (Subprocess::spawn does) to re-point the
  /// pre-opened fd at their own `crash.<pid>.json`.
  static void reinstallAfterFork();

  /// Clean-exit teardown: closes the fd and unlinks the file unless a
  /// dump was actually written.
  static void disarm();

  /// Writes the dump now. Async-signal-safe. \p Reason must be a string
  /// with static storage ("signal", "terminate", "unhandled-exception",
  /// "failpoint-crash"); \p Sig is the signal number or 0. Only the
  /// first dump wins; later calls return false. Returns false when not
  /// installed.
  static bool dumpNow(const char *Reason, int Sig = 0);

  /// Registers the observability artifact paths the SIGINT/SIGTERM
  /// handler must flush. Independent of CABLE_CRASH_DIR. Empty paths are
  /// skipped at signal time. \p Args is pre-escaped here, in normal
  /// context, so the handler only writes bytes.
  static void registerSignalArtifacts(const char *Tool,
                                      const std::string &LogOut,
                                      const std::string &MetricsOut,
                                      const std::string &ReportOut,
                                      const std::vector<std::string> &Args);

  /// Async-signal-safe: writes reduced-but-valid `cable-log/1`,
  /// `cable-metrics/1`, and `cable-run-report/1` documents (whichever
  /// paths were registered) for a run dying with \p ExitCode. Histograms
  /// carry count/sum/max only and log records come from the crash ring —
  /// documented as the signal-exit subset in docs/OBSERVABILITY.md.
  static void writeArtifactsFromSignal(int ExitCode);
};

} // namespace cable

#endif // CABLE_SUPPORT_CRASHDUMP_H
