//===- support/RunReport.cpp - Self-describing run artifacts ---------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/RunReport.h"

#include "support/AtomicFile.h"
#include "support/BuildInfo.h"
#include "support/Json.h"
#include "support/Metrics.h"

using namespace cable;

namespace {

void emitBuildStamp(JsonWriter &W) {
  W.member("version", std::string_view(buildinfo::kVersion));
  W.member("git_sha", std::string_view(buildinfo::kGitSha));
  W.member("build_type", std::string_view(buildinfo::kBuildType));
  W.member("sanitize", std::string_view(buildinfo::kSanitize));
  W.member("instrumented", buildinfo::kInstrumented);
}

} // namespace

std::string cable::renderMetricsJson(std::string_view Tool) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", std::string_view("cable-metrics/1"));
  W.member("tool", Tool);
  emitBuildStamp(W);
  W.key("metrics");
  W.rawValue(Metrics::snapshotJson());
  W.endObject();
  return W.take();
}

Status cable::writeMetricsJson(const std::string &Path,
                               std::string_view Tool) {
  return AtomicFile::write(Path, renderMetricsJson(Tool));
}

std::string cable::renderRunReport(const RunReportInfo &Info) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", std::string_view("cable-run-report/1"));
  W.member("tool", std::string_view(Info.Tool));
  emitBuildStamp(W);
  W.key("args");
  W.beginArray();
  for (const std::string &A : Info.Args)
    W.value(std::string_view(A));
  W.endArray();
  W.member("truncated", Info.Truncated);
  W.member("clean_exit", Info.CleanExit);
  W.member("exit_code", static_cast<int64_t>(Info.ExitCode));
  W.key("metrics");
  W.rawValue(Metrics::snapshotJson());
  W.endObject();
  return W.take();
}

Status cable::writeRunReport(const std::string &Path,
                             const RunReportInfo &Info) {
  return AtomicFile::write(Path, renderRunReport(Info));
}
