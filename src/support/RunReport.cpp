//===- support/RunReport.cpp - Self-describing run artifacts ---------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/RunReport.h"

#include "support/AtomicFile.h"
#include "support/BuildInfo.h"
#include "support/Json.h"
#include "support/Metrics.h"

using namespace cable;

namespace {

/// Worker crash dumps the shard supervisor collected this run (validated
/// JSON documents, embedded verbatim into the sharded section). Leaked
/// like the metrics registry: report rendering can run from handlers late
/// in process teardown.
std::vector<std::string> &collectedDumps() {
  static std::vector<std::string> *Dumps = new std::vector<std::string>();
  return *Dumps;
}

void emitBuildStamp(JsonWriter &W) {
  W.member("version", std::string_view(buildinfo::kVersion));
  W.member("git_sha", std::string_view(buildinfo::kGitSha));
  W.member("build_type", std::string_view(buildinfo::kBuildType));
  W.member("sanitize", std::string_view(buildinfo::kSanitize));
  W.member("instrumented", buildinfo::kInstrumented);
}

/// Emits the `sharded` summary object when this run used (or asked for)
/// multi-process construction: worker count, restart/crash tallies, the
/// telemetry merge-vs-lost ledger, and per-worker block attribution.
/// Quiet runs (no sharding requested) get no section at all.
void emitShardedSection(JsonWriter &W) {
  uint64_t Builds = Metrics::counterValue("shard.builds");
  uint64_t Degraded = Metrics::counterValue("shard.degraded-builds");
  int64_t Workers = Metrics::gauge("shard.workers").high();
  if (Builds == 0 && Degraded == 0 && Workers == 0)
    return;
  W.key("sharded");
  W.beginObject();
  W.member("builds", Builds);
  W.member("degraded_builds", Degraded);
  W.member("workers", Workers);
  W.member("worker_restarts", Metrics::counterValue("shard.worker-restarts"));
  W.member("worker_crashes", Metrics::counterValue("shard.worker-crashes"));
  W.member("blocks_dispatched",
           Metrics::counterValue("shard.blocks-dispatched"));
  W.member("flushes_merged", Metrics::counterValue("shard.telemetry-merged"));
  W.member("flushes_lost", Metrics::counterValue("shard.telemetry-lost"));
  W.key("blocks_per_worker");
  W.beginArray();
  for (int64_t I = 0; I < Workers; ++I)
    W.value(Metrics::counterValue("shard.worker-blocks." +
                                  std::to_string(I)));
  W.endArray();
  if (!collectedDumps().empty()) {
    W.key("crash_dumps");
    W.beginArray();
    for (const std::string &Doc : collectedDumps())
      W.rawValue(Doc);
    W.endArray();
  }
  W.endObject();
}

/// Emits the `cache` summary object when this run consulted the lattice
/// artifact store: hit/miss/store tallies, verification failures with
/// their quarantines, and lock-contention totals. Runs without a cache
/// directory get no section at all.
void emitCacheSection(JsonWriter &W) {
  uint64_t Hits = Metrics::counterValue("cache.hits");
  uint64_t Misses = Metrics::counterValue("cache.misses");
  if (Hits == 0 && Misses == 0)
    return;
  W.key("cache");
  W.beginObject();
  W.member("hits", Hits);
  W.member("misses", Misses);
  W.member("stores", Metrics::counterValue("cache.stores"));
  W.member("verify_failed", Metrics::counterValue("cache.verify-failed"));
  W.member("quarantined", Metrics::counterValue("cache.quarantined"));
  W.member("lock_waits", Metrics::counterValue("cache.lock-waits"));
  W.member("lock_wait_ms", Metrics::counterValue("cache.lock-wait-ms"));
  W.member("lock_timeouts", Metrics::counterValue("cache.lock-timeouts"));
  W.endObject();
}

} // namespace

std::string cable::renderMetricsJson(std::string_view Tool) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", std::string_view("cable-metrics/1"));
  W.member("tool", Tool);
  emitBuildStamp(W);
  emitShardedSection(W);
  emitCacheSection(W);
  W.key("metrics");
  W.rawValue(Metrics::snapshotJson());
  W.endObject();
  return W.take();
}

Status cable::writeMetricsJson(const std::string &Path,
                               std::string_view Tool) {
  return AtomicFile::write(Path, renderMetricsJson(Tool));
}

std::string cable::renderRunReport(const RunReportInfo &Info) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", std::string_view("cable-run-report/1"));
  W.member("tool", std::string_view(Info.Tool));
  emitBuildStamp(W);
  W.key("args");
  W.beginArray();
  for (const std::string &A : Info.Args)
    W.value(std::string_view(A));
  W.endArray();
  W.member("truncated", Info.Truncated);
  W.member("clean_exit", Info.CleanExit);
  W.member("exit_code", static_cast<int64_t>(Info.ExitCode));
  emitShardedSection(W);
  emitCacheSection(W);
  W.key("metrics");
  W.rawValue(Metrics::snapshotJson());
  W.endObject();
  return W.take();
}

Status cable::writeRunReport(const std::string &Path,
                             const RunReportInfo &Info) {
  return AtomicFile::write(Path, renderRunReport(Info));
}

void cable::addCollectedCrashDump(std::string Document) {
  collectedDumps().push_back(std::move(Document));
}

const std::vector<std::string> &cable::collectedCrashDumps() {
  return collectedDumps();
}
