//===- support/AtomicFile.cpp - Crash-safe file output ---------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include "support/Failpoint.h"
#include "support/StringUtil.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace cable;

namespace {

Failpoint::Registrar RegOpen("atomicfile-open");
Failpoint::Registrar RegWrite("atomicfile-write");
Failpoint::Registrar RegFsync("atomicfile-fsync");
Failpoint::Registrar RegRename("atomicfile-rename");
Failpoint::Registrar RegRead("file-read");

/// CRC-32 (IEEE), reflected polynomial. Eight slicing tables generated on
/// first use: table 0 is the classic byte-at-a-time table; tables 1..7
/// extend it so eight input bytes fold in per iteration (slicing-by-8),
/// which matters now that whole lattice artifact bodies are checksummed
/// on every warm cache load, not just journal frames.
using CrcTables = std::array<std::array<uint32_t, 256>, 8>;
const CrcTables &crcTables() {
  static const auto Tables = [] {
    CrcTables T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[0][I] = C;
    }
    for (size_t S = 1; S < 8; ++S)
      for (uint32_t I = 0; I < 256; ++I)
        T[S][I] = (T[S - 1][I] >> 8) ^ T[0][T[S - 1][I] & 0xFF];
    return T;
  }();
  return Tables;
}

Status ioError(const std::string &Path, const std::string &What) {
  Diagnostic D;
  D.Level = Severity::Error;
  D.Code = ErrorCode::IoError;
  D.File = Path;
  D.Message = What + ": " + std::strerror(errno);
  return Status::error(std::move(D));
}

/// fsyncs the directory containing \p Path so a just-renamed entry is
/// durable. Best effort: some filesystems reject directory fsync.
void fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
}

/// Little-endian u32 encode/decode for the frame header.
void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

uint32_t getU32(std::string_view Data, size_t At) {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(Data[At + static_cast<size_t>(I)]);
  return V;
}

} // namespace

uint32_t cable::crc32(std::string_view Data, uint32_t Seed) {
  const CrcTables &T = crcTables();
  uint32_t C = Seed ^ 0xFFFFFFFFu;
  const unsigned char *P = reinterpret_cast<const unsigned char *>(Data.data());
  size_t N = Data.size();
  while (N >= 8) {
    // One table lookup per byte, but the eight lookups are independent of
    // each other (only of C), so the loop pipelines ~4-5x better than the
    // strictly serial byte-at-a-time recurrence.
    uint32_t Lo = C ^ (static_cast<uint32_t>(P[0]) |
                       static_cast<uint32_t>(P[1]) << 8 |
                       static_cast<uint32_t>(P[2]) << 16 |
                       static_cast<uint32_t>(P[3]) << 24);
    C = T[7][Lo & 0xFF] ^ T[6][(Lo >> 8) & 0xFF] ^ T[5][(Lo >> 16) & 0xFF] ^
        T[4][Lo >> 24] ^ T[3][P[4]] ^ T[2][P[5]] ^ T[1][P[6]] ^ T[0][P[7]];
    P += 8;
    N -= 8;
  }
  for (; N; --N, ++P)
    C = T[0][(C ^ *P) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

Status AtomicFile::write(const std::string &Path, std::string_view Contents) {
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  if (Status S = Failpoint::hit("atomicfile-open"); !S.isOk())
    return S;
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return ioError(Tmp, "cannot create temporary");

  auto Fail = [&](const std::string &What) {
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return ioError(Tmp, What);
  };
  auto FailInjected = [&](Status S) {
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return S;
  };

  if (Status S = Failpoint::hit("atomicfile-write"); !S.isOk())
    return FailInjected(std::move(S));
  size_t Written = 0;
  while (Written < Contents.size()) {
    ssize_t N = ::write(Fd, Contents.data() + Written,
                        Contents.size() - Written);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Fail("write failed");
    }
    Written += static_cast<size_t>(N);
  }
  if (Status S = Failpoint::hit("atomicfile-fsync"); !S.isOk())
    return FailInjected(std::move(S));
  if (::fsync(Fd) != 0)
    return Fail("fsync failed");
  if (::close(Fd) != 0) {
    ::unlink(Tmp.c_str());
    return ioError(Tmp, "close failed");
  }
  if (Status S = Failpoint::hit("atomicfile-rename"); !S.isOk()) {
    ::unlink(Tmp.c_str());
    return S;
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return ioError(Path, "rename failed");
  }
  fsyncParentDir(Path);
  return Status::ok();
}

StatusOr<std::string> cable::readFileToString(const std::string &Path) {
  if (Status S = Failpoint::hit("file-read"); !S.isOk())
    return S;
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return ioError(Path, "cannot open");
  std::string Out;
  char Buf[1 << 16];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Status S = ioError(Path, "read failed");
      ::close(Fd);
      return S;
    }
    if (N == 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  return Out;
}

std::string cable::encodeFramedRecord(std::string_view Payload) {
  std::string Out;
  Out.reserve(Payload.size() + 8);
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, crc32(Payload));
  Out.append(Payload);
  return Out;
}

FramedScan cable::scanFramedRecords(std::string_view Data) {
  FramedScan Scan;
  size_t At = 0;
  auto Torn = [&](const std::string &Why) {
    Scan.Torn = true;
    Scan.TornOffset = At;
    Diagnostic D;
    D.Level = Severity::Warning;
    D.Code = ErrorCode::ParseError;
    // Records are not lines; reuse the line slot for the 1-based record
    // number so the rendering stays positioned.
    D.Pos.Line = static_cast<uint32_t>(Scan.Records.size() + 1);
    D.Message = "torn record at byte offset " + std::to_string(At) + ": " +
                Why + " (skipping " + std::to_string(Data.size() - At) +
                " trailing byte(s))";
    Scan.TornStatus = Status::error(std::move(D));
  };
  while (At < Data.size()) {
    if (Data.size() - At < 8) {
      Torn("truncated frame header");
      break;
    }
    uint32_t Len = getU32(Data, At);
    uint32_t Crc = getU32(Data, At + 4);
    if (Data.size() - At - 8 < Len) {
      Torn("frame length " + std::to_string(Len) + " overruns the file");
      break;
    }
    std::string_view Payload = Data.substr(At + 8, Len);
    if (crc32(Payload) != Crc) {
      Torn("checksum mismatch");
      break;
    }
    Scan.Records.push_back({std::string(Payload), At});
    At += 8 + Len;
  }
  return Scan;
}

std::string cable::withChecksumHeader(std::string_view Magic, unsigned Version,
                                      std::string_view Body) {
  char Crc[16];
  std::snprintf(Crc, sizeof(Crc), "%08x", crc32(Body));
  std::string Out = "#%";
  Out += Magic;
  Out += " v" + std::to_string(Version) + " crc=" + Crc + "\n";
  Out += Body;
  return Out;
}

StatusOr<CheckedText> cable::readChecksumHeader(std::string_view Magic,
                                                std::string_view Text,
                                                const std::string &File,
                                                bool AllowLegacy) {
  auto Error = [&](const std::string &Message) {
    Diagnostic D;
    D.Level = Severity::Error;
    D.Code = ErrorCode::ParseError;
    D.File = File;
    D.Pos.Line = 1;
    D.Message = Message;
    return Status::error(std::move(D));
  };

  if (Text.substr(0, 2) != "#%") {
    if (AllowLegacy)
      return CheckedText{std::string(Text), 0, true};
    return Error("missing '#%" + std::string(Magic) + "' checksum header");
  }
  size_t Eol = Text.find('\n');
  std::string_view Header =
      Text.substr(2, (Eol == std::string_view::npos ? Text.size() : Eol) - 2);
  std::vector<std::string> Fields = splitWhitespace(Header);
  if (Fields.size() != 3 || Fields[0] != Magic)
    return Error("malformed checksum header (expected '#%" +
                 std::string(Magic) + " v<N> crc=<8 hex>')");
  std::optional<unsigned long> Version;
  if (Fields[1].size() > 1 && Fields[1][0] == 'v')
    Version = parseUnsignedLong(std::string_view(Fields[1]).substr(1));
  if (!Version)
    return Error("malformed version '" + Fields[1] + "' in checksum header");
  if (Fields[2].rfind("crc=", 0) != 0 || Fields[2].size() != 4 + 8)
    return Error("malformed checksum field '" + Fields[2] + "'");
  uint32_t Expected = 0;
  for (char Ch : Fields[2].substr(4)) {
    uint32_t Digit;
    if (Ch >= '0' && Ch <= '9')
      Digit = static_cast<uint32_t>(Ch - '0');
    else if (Ch >= 'a' && Ch <= 'f')
      Digit = static_cast<uint32_t>(Ch - 'a' + 10);
    else
      return Error("malformed checksum field '" + Fields[2] + "'");
    Expected = (Expected << 4) | Digit;
  }
  std::string Body(Eol == std::string_view::npos ? std::string_view()
                                                 : Text.substr(Eol + 1));
  uint32_t Actual = crc32(Body);
  if (Actual != Expected) {
    char Got[16];
    std::snprintf(Got, sizeof(Got), "%08x", Actual);
    return Error("checksum mismatch: header says crc=" + Fields[2].substr(4) +
                 " but the body hashes to crc=" + Got +
                 " — the file is corrupt or truncated");
  }
  return CheckedText{std::move(Body), static_cast<unsigned>(*Version), false};
}
