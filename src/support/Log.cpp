//===- support/Log.cpp - Structured event logging --------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"

#include "support/AtomicFile.h"
#include "support/BuildInfo.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include <unistd.h>

using namespace cable;

std::atomic<unsigned> Log::Armed{0};

namespace {

std::atomic<uint8_t> MinLevel{static_cast<uint8_t>(Log::Level::Info)};
std::atomic<uint64_t> NextSeq{0};

/// One thread's bounded record ring. Appends are lock-free against every
/// other thread's appends; the mutex only serializes this thread's
/// appender against the exporter, exactly like TraceLog's span rings.
struct ThreadRing {
  std::mutex Mutex;
  uint32_t Tid = 0;
  std::vector<Log::Record> Ring;
  size_t Capacity = 0;
  size_t Next = 0;
  uint64_t Total = 0;
  uint64_t Dropped = 0;
};

struct ForeignBatch {
  int Pid = 0;
  std::vector<Log::Record> Records;
};

struct Global {
  std::mutex Mutex;
  std::vector<ThreadRing *> Rings; ///< leaked; a ring outlives its thread
  uint32_t NextTid = 1;
  size_t RingCapacity = 4096;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  std::vector<ForeignBatch> Foreign;
  uint64_t ForeignDropped = 0;
};

/// Intentionally leaked: records may be appended from static destructors.
Global &global() {
  static Global *G = new Global;
  return *G;
}

thread_local ThreadRing *MyRing = nullptr;

ThreadRing *myRing() {
  if (MyRing)
    return MyRing;
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  auto *R = new ThreadRing; // leaked with the registry
  R->Tid = G.NextTid++;
  R->Capacity = G.RingCapacity;
  G.Rings.push_back(R);
  MyRing = R;
  return R;
}

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - global().Epoch)
          .count());
}

//===----------------------------------------------------------------------===//
// Crash ring: fully rendered JSON object lines in fixed storage, readable
// from a signal handler while other threads keep writing. Each slot is a
// seqlock: the writer stamps 2*idx+1 (odd: mid-copy), fills the text,
// then stamps 2*idx+2; the reader accepts a slot only when it reads the
// even stamp before *and* after the copy.
//===----------------------------------------------------------------------===//

constexpr size_t kCrashSlots = 64;
constexpr size_t kCrashSlotBytes = 1024;

struct CrashSlot {
  std::atomic<uint64_t> State{0};
  uint32_t Len = 0;
  char Text[kCrashSlotBytes];
};

CrashSlot GCrashRing[kCrashSlots];
std::atomic<uint64_t> GCrashNext{0};

void crashRingAppend(const char *Line, size_t Len) {
  if (Len == 0 || Len > kCrashSlotBytes)
    return; // an over-long line is dropped, never truncated mid-JSON
  uint64_t Idx = GCrashNext.fetch_add(1, std::memory_order_relaxed);
  CrashSlot &S = GCrashRing[Idx % kCrashSlots];
  S.State.store(2 * Idx + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  std::memcpy(S.Text, Line, Len);
  S.Len = static_cast<uint32_t>(Len);
  S.State.store(2 * Idx + 2, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// JSON line rendering. Log output must stay parseable by strict JSON
// readers even when a message carries arbitrary path bytes, so unlike the
// general JsonWriter this escaper also hex-escapes every byte >= 0x7F:
// the rendered line is pure ASCII and valid UTF-8 by construction.
//===----------------------------------------------------------------------===//

void appendEscaped(std::string &Out, std::string_view S) {
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20 || C >= 0x7F) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
}

void renderRecordJson(std::string &Out, const Log::Record &R, int Pid) {
  Out += "{\"seq\":";
  Out += std::to_string(R.Seq);
  Out += ",\"pid\":";
  Out += std::to_string(Pid);
  Out += ",\"tid\":";
  Out += std::to_string(R.Tid);
  Out += ",\"t_us\":";
  Out += std::to_string(R.TimeUs);
  Out += ",\"level\":\"";
  Out += Log::levelName(R.Lvl);
  Out += "\",\"event\":\"";
  appendEscaped(Out, R.Event);
  Out += "\",\"subsystem\":\"";
  appendEscaped(Out, R.Subsystem);
  Out += "\",\"msg\":\"";
  appendEscaped(Out, R.Msg);
  Out += "\"";
  if (!R.Fields.empty()) {
    Out += ",\"fields\":{";
    bool First = true;
    for (const Log::Field &F : R.Fields) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\"";
      appendEscaped(Out, F.Key);
      Out += "\":";
      if (F.Numeric) {
        Out += F.Value;
      } else {
        Out += "\"";
        appendEscaped(Out, F.Value);
        Out += "\"";
      }
    }
    Out += "}";
  }
  Out += "}";
}

//===----------------------------------------------------------------------===//
// Wire encoding (little-endian, strict exact-consume decode).
//===----------------------------------------------------------------------===//

void putU8(std::string &Out, uint8_t V) {
  Out.push_back(static_cast<char>(V));
}
void putU16(std::string &Out, uint16_t V) {
  for (int I = 0; I < 2; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}
void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
}

bool getU8(std::string_view &S, uint8_t &V) {
  if (S.size() < 1)
    return false;
  V = static_cast<uint8_t>(S[0]);
  S.remove_prefix(1);
  return true;
}
bool getU16(std::string_view &S, uint16_t &V) {
  if (S.size() < 2)
    return false;
  V = 0;
  for (int I = 1; I >= 0; --I)
    V = static_cast<uint16_t>((V << 8) |
                              static_cast<uint8_t>(S[static_cast<size_t>(I)]));
  S.remove_prefix(2);
  return true;
}
bool getU32(std::string_view &S, uint32_t &V) {
  if (S.size() < 4)
    return false;
  V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(S[static_cast<size_t>(I)]);
  S.remove_prefix(4);
  return true;
}
bool getU64(std::string_view &S, uint64_t &V) {
  if (S.size() < 8)
    return false;
  V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(S[static_cast<size_t>(I)]);
  S.remove_prefix(8);
  return true;
}

void putString(std::string &Out, std::string_view S) {
  size_t N = std::min(S.size(), Log::kMaxWireStringLen);
  putU16(Out, static_cast<uint16_t>(N));
  Out.append(S.data(), N);
}

bool getString(std::string_view &S, std::string &Out) {
  uint16_t Len = 0;
  if (!getU16(S, Len) || Len > Log::kMaxWireStringLen || S.size() < Len)
    return false;
  Out.assign(S.data(), Len);
  S.remove_prefix(Len);
  return true;
}

} // namespace

void Log::setEnabled(bool On) {
  if (On) {
    (void)global(); // pin the registry before any emit
    Armed.fetch_or(kStructuredBit, std::memory_order_relaxed);
  } else {
    Armed.fetch_and(~kStructuredBit, std::memory_order_relaxed);
  }
}

void Log::setCrashCapture(bool On) {
  if (On) {
    (void)global();
    Armed.fetch_or(kCrashBit, std::memory_order_relaxed);
  } else {
    Armed.fetch_and(~kCrashBit, std::memory_order_relaxed);
  }
}

void Log::setLevel(Level L) {
  MinLevel.store(static_cast<uint8_t>(L), std::memory_order_relaxed);
}

Log::Level Log::level() {
  return static_cast<Level>(MinLevel.load(std::memory_order_relaxed));
}

bool Log::parseLevel(std::string_view Text, Level &Out) {
  if (Text == "debug")
    Out = Level::Debug;
  else if (Text == "info")
    Out = Level::Info;
  else if (Text == "warn" || Text == "warning")
    Out = Level::Warn;
  else if (Text == "error")
    Out = Level::Error;
  else
    return false;
  return true;
}

const char *Log::levelName(Level L) {
  switch (L) {
  case Level::Debug:
    return "debug";
  case Level::Info:
    return "info";
  case Level::Warn:
    return "warn";
  case Level::Error:
    return "error";
  }
  return "info";
}

void Log::emit(Level L, std::string_view Subsystem, std::string_view Event,
               std::string_view Msg, std::initializer_list<Field> Fields) {
  if (!enabled())
    return;
  if (static_cast<uint8_t>(L) < MinLevel.load(std::memory_order_relaxed))
    return;

  ThreadRing *R = myRing();
  Record Rec;
  Rec.Seq = NextSeq.fetch_add(1, std::memory_order_relaxed) + 1;
  Rec.TimeUs = nowUs();
  Rec.Lvl = L;
  Rec.Event = std::string(Event);
  Rec.Subsystem = std::string(Subsystem);
  Rec.Msg = std::string(Msg);
  Rec.Fields.assign(Fields.begin(), Fields.end());
  Rec.Tid = R->Tid;

  // Crash ring first: even if the structured store below is never
  // drained, a dying process keeps its last events.
  std::string Line;
  renderRecordJson(Line, Rec, ::getpid());
  crashRingAppend(Line.data(), Line.size());

  std::lock_guard<std::mutex> Lock(R->Mutex);
  if (R->Ring.size() < R->Capacity) {
    R->Ring.push_back(std::move(Rec));
  } else {
    if (R->Capacity == 0)
      return;
    R->Ring[R->Next % R->Capacity] = std::move(Rec);
    ++R->Dropped;
  }
  ++R->Next;
  ++R->Total;
}

std::vector<Log::Record> Log::drainRecords() {
  Global &G = global();
  std::vector<ThreadRing *> Rings;
  {
    std::lock_guard<std::mutex> Lock(G.Mutex);
    Rings = G.Rings;
  }
  std::vector<Record> Out;
  for (ThreadRing *R : Rings) {
    std::lock_guard<std::mutex> Lock(R->Mutex);
    size_t N = R->Ring.size();
    if (N == 0)
      continue;
    // Oldest-first within the ring: entries [Next % Cap, ...) wrapped.
    size_t Start = R->Ring.size() < R->Capacity ? 0 : R->Next % R->Capacity;
    for (size_t I = 0; I < N; ++I)
      Out.push_back(std::move(R->Ring[(Start + I) % N]));
    R->Ring.clear();
    R->Next = 0;
  }
  std::sort(Out.begin(), Out.end(),
            [](const Record &A, const Record &B) { return A.Seq < B.Seq; });
  return Out;
}

uint64_t Log::droppedCount() {
  Global &G = global();
  std::vector<ThreadRing *> Rings;
  uint64_t Total = 0;
  {
    std::lock_guard<std::mutex> Lock(G.Mutex);
    Rings = G.Rings;
    Total += G.ForeignDropped;
  }
  for (ThreadRing *R : Rings) {
    std::lock_guard<std::mutex> Lock(R->Mutex);
    Total += R->Dropped;
  }
  return Total;
}

void Log::ingestRemote(int Pid, std::vector<Record> Records,
                       uint64_t DroppedDelta) {
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  G.ForeignDropped += DroppedDelta;
  if (Records.empty())
    return;
  for (ForeignBatch &B : G.Foreign) {
    if (B.Pid == Pid) {
      B.Records.insert(B.Records.end(),
                       std::make_move_iterator(Records.begin()),
                       std::make_move_iterator(Records.end()));
      return;
    }
  }
  ForeignBatch B;
  B.Pid = Pid;
  B.Records = std::move(Records);
  G.Foreign.push_back(std::move(B));
}

void Log::resetAfterFork() {
  Global &G = global();
  // Single-threaded post-fork context: locks are taken only to keep the
  // invariants uniform.
  std::vector<ThreadRing *> Rings;
  {
    std::lock_guard<std::mutex> Lock(G.Mutex);
    Rings = G.Rings;
    G.Foreign.clear();
    G.ForeignDropped = 0;
  }
  for (ThreadRing *R : Rings) {
    std::lock_guard<std::mutex> Lock(R->Mutex);
    R->Ring.clear();
    R->Next = 0;
    R->Dropped = 0;
    R->Total = 0;
  }
  for (CrashSlot &S : GCrashRing) {
    S.State.store(0, std::memory_order_relaxed);
    S.Len = 0;
  }
  GCrashNext.store(0, std::memory_order_relaxed);
}

std::string Log::exportJsonl(std::string_view Tool) {
  int Pid = ::getpid();
  std::string Out = "{\"schema\":\"cable-log/1\",\"tool\":\"";
  appendEscaped(Out, Tool);
  Out += "\",\"version\":\"";
  appendEscaped(Out, buildinfo::kVersion);
  Out += "\",\"git_sha\":\"";
  appendEscaped(Out, buildinfo::kGitSha);
  Out += "\",\"build_type\":\"";
  appendEscaped(Out, buildinfo::kBuildType);
  Out += "\",\"pid\":";
  Out += std::to_string(Pid);
  Out += ",\"dropped\":";
  Out += std::to_string(droppedCount());
  Out += "}\n";

  struct Entry {
    int Pid;
    const Record *R;
  };
  std::vector<Record> Local = drainRecords();
  std::vector<Entry> All;
  All.reserve(Local.size());
  for (const Record &R : Local)
    All.push_back({Pid, &R});
  Global &G = global();
  std::lock_guard<std::mutex> Lock(G.Mutex);
  for (const ForeignBatch &B : G.Foreign)
    for (const Record &R : B.Records)
      All.push_back({B.Pid, &R});
  std::stable_sort(All.begin(), All.end(), [](const Entry &A, const Entry &B) {
    return A.Pid != B.Pid ? A.Pid < B.Pid : A.R->Seq < B.R->Seq;
  });
  for (const Entry &E : All) {
    renderRecordJson(Out, *E.R, E.Pid);
    Out += "\n";
  }
  return Out;
}

Status Log::writeJsonl(const std::string &Path, std::string_view Tool) {
  return AtomicFile::write(Path, exportJsonl(Tool));
}

std::string Log::encodeRecords(const std::vector<Record> &Records) {
  std::string Out;
  size_t N = std::min(Records.size(), kMaxWireRecords);
  putU32(Out, static_cast<uint32_t>(N));
  for (size_t I = 0; I < N; ++I) {
    const Record &R = Records[I];
    putU64(Out, R.Seq);
    putU64(Out, R.TimeUs);
    putU8(Out, static_cast<uint8_t>(R.Lvl));
    putU32(Out, R.Tid);
    putString(Out, R.Event);
    putString(Out, R.Subsystem);
    putString(Out, R.Msg);
    size_t NF = std::min(R.Fields.size(), kMaxWireFields);
    putU8(Out, static_cast<uint8_t>(NF));
    for (size_t F = 0; F < NF; ++F) {
      putString(Out, R.Fields[F].Key);
      putString(Out, R.Fields[F].Value);
      putU8(Out, R.Fields[F].Numeric ? 1 : 0);
    }
  }
  return Out;
}

bool Log::decodeRecords(std::string_view Bytes, std::vector<Record> &Out) {
  Out.clear();
  std::string_view S = Bytes;
  uint32_t N = 0;
  if (!getU32(S, N) || N > kMaxWireRecords)
    return false;
  Out.reserve(N);
  for (uint32_t I = 0; I < N; ++I) {
    Record R;
    uint8_t Lvl = 0, NF = 0;
    if (!getU64(S, R.Seq) || !getU64(S, R.TimeUs) || !getU8(S, Lvl) ||
        !getU32(S, R.Tid) || !getString(S, R.Event) ||
        !getString(S, R.Subsystem) || !getString(S, R.Msg) || !getU8(S, NF))
      return false;
    if (Lvl > static_cast<uint8_t>(Level::Error) || NF > kMaxWireFields)
      return false;
    R.Lvl = static_cast<Level>(Lvl);
    R.Fields.resize(NF);
    for (uint8_t F = 0; F < NF; ++F) {
      uint8_t Numeric = 0;
      if (!getString(S, R.Fields[F].Key) ||
          !getString(S, R.Fields[F].Value) || !getU8(S, Numeric) ||
          Numeric > 1)
        return false;
      R.Fields[F].Numeric = Numeric != 0;
    }
    Out.push_back(std::move(R));
  }
  return S.empty(); // exact consume, like every other Cable decoder
}

size_t Log::copyCrashRecords(char *Buf, size_t Cap) {
  uint64_t End = GCrashNext.load(std::memory_order_acquire);
  uint64_t Start = End > kCrashSlots ? End - kCrashSlots : 0;
  size_t Written = 0;
  for (uint64_t Idx = Start; Idx < End; ++Idx) {
    CrashSlot &S = GCrashRing[Idx % kCrashSlots];
    uint64_t St = S.State.load(std::memory_order_acquire);
    if (St != 2 * Idx + 2)
      continue; // torn or already overwritten by a newer writer
    uint32_t Len = S.Len;
    if (Len == 0 || Len > kCrashSlotBytes)
      continue;
    if (Written + Len + 1 > Cap)
      break;
    std::memcpy(Buf + Written, S.Text, Len);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (S.State.load(std::memory_order_relaxed) != 2 * Idx + 2)
      continue; // a writer raced in mid-copy; drop the torn bytes
    Written += Len;
    Buf[Written++] = '\n';
  }
  return Written;
}
