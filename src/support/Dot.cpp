//===- support/Dot.cpp - Graphviz DOT emission ----------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Dot.h"

using namespace cable;

std::string DotWriter::escape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

void DotWriter::addNode(std::string_view Id, std::string_view Label,
                        std::string_view ExtraAttrs) {
  std::string Line = "  \"" + escape(Id) + "\" [label=\"" + escape(Label) +
                     "\"";
  if (!ExtraAttrs.empty()) {
    Line += ", ";
    Line += ExtraAttrs;
  }
  Line += "];";
  Lines.push_back(std::move(Line));
}

void DotWriter::addEdge(std::string_view From, std::string_view To,
                        std::string_view Label) {
  std::string Line =
      "  \"" + escape(From) + "\" -> \"" + escape(To) + "\"";
  if (!Label.empty())
    Line += " [label=\"" + escape(Label) + "\"]";
  Line += ";";
  Lines.push_back(std::move(Line));
}

void DotWriter::addRaw(std::string_view Line) {
  Lines.push_back("  " + std::string(Line));
}

std::string DotWriter::str() const {
  std::string Out = "digraph \"" + escape(GraphName) + "\" {\n";
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  Out += "}\n";
  return Out;
}
