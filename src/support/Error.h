//===- support/Error.h - Fatal-error helpers -------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fatal-error machinery in the spirit of llvm_unreachable and
/// report_fatal_error. The library proper never throws; programmatic errors
/// abort with a message, and recoverable conditions are reported through
/// return values (std::optional plus an out-parameter message).
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_ERROR_H
#define CABLE_SUPPORT_ERROR_H

#include <cstdio>
#include <cstdlib>

namespace cable {

/// Prints \p Msg to stderr and aborts. Used for conditions that indicate a
/// bug in the caller, not bad user input.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "cable fatal error: %s\n", Msg);
  std::abort();
}

} // namespace cable

/// Marks a point in the code that must never be reached.
#define CABLE_UNREACHABLE(MSG) ::cable::reportFatalError(MSG)

#endif // CABLE_SUPPORT_ERROR_H
