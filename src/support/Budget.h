//===- support/Budget.h - Resource budgets and cancellation -----*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource budgets for the lattice pipeline. Concept lattices are
/// worst-case exponential in the context, so every batch entry point
/// accepts a Budget: a wall-clock deadline, a cap on enumerated concepts,
/// and a cap on context cells (objects × attributes). A BudgetMeter stamps
/// the deadline at construction and is shared — by reference — across all
/// workers of one operation; expiry and external cancellation are sticky
/// and thread-safe.
///
/// Checkpoint granularity is one closure computation (one concept), which
/// dwarfs the cost of an atomic load plus an occasional clock sample.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_BUDGET_H
#define CABLE_SUPPORT_BUDGET_H

#include "support/Metrics.h"
#include "support/Status.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <optional>

namespace cable {

/// Declarative resource limits. Absent fields mean unlimited; a
/// default-constructed Budget imposes no limits at all.
struct Budget {
  /// Wall-clock limit for the whole operation.
  std::optional<std::chrono::milliseconds> TimeLimit;
  /// Maximum number of concepts a builder may enumerate.
  std::optional<size_t> MaxConcepts;
  /// Maximum context size in cells (objects × attributes).
  std::optional<size_t> MaxContextCells;

  bool unlimited() const {
    return !TimeLimit && !MaxConcepts && !MaxContextCells;
  }
};

/// Runtime companion of a Budget: stamps the deadline when constructed and
/// answers "should we stop?" cheaply from many threads. Sticky: once
/// expired or cancelled it stays that way.
class BudgetMeter {
public:
  explicit BudgetMeter(const Budget &B)
      : Limits(B),
        Start(std::chrono::steady_clock::now()),
        Deadline(B.TimeLimit ? std::optional(Start + *B.TimeLimit)
                             : std::nullopt) {}

  BudgetMeter(const BudgetMeter &) = delete;
  BudgetMeter &operator=(const BudgetMeter &) = delete;

  const Budget &budget() const { return Limits; }

  /// True once the deadline passed or cancel() was called. The first
  /// caller to observe an expired clock latches the flag, so all
  /// subsequent calls are a single relaxed atomic load.
  bool expired() const {
    if (Stopped.load(std::memory_order_relaxed))
      return true;
    if (Deadline && std::chrono::steady_clock::now() >= *Deadline) {
      // Latching, not per-check: counts operations that tripped their
      // deadline, and only the first observer reaches this line.
      if (!Stopped.exchange(true, std::memory_order_relaxed))
        Metrics::counter("budget.deadline-trips").add();
      return true;
    }
    return false;
  }

  /// Requests cooperative cancellation from outside the operation.
  void cancel() {
    Cancelled.store(true, std::memory_order_relaxed);
    if (!Stopped.exchange(true, std::memory_order_relaxed))
      Metrics::counter("budget.cancels").add();
  }

  bool wasCancelled() const {
    return Cancelled.load(std::memory_order_relaxed);
  }

  /// Elapsed wall-clock time since construction.
  std::chrono::milliseconds elapsed() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - Start);
  }

  /// The status describing why a budgeted operation stopped early:
  /// Cancelled if cancel() was called, ResourceExhausted otherwise.
  Status stopStatus(const char *What) const {
    if (wasCancelled())
      return Status::error(ErrorCode::Cancelled,
                           std::string(What) + " cancelled");
    return Status::error(ErrorCode::ResourceExhausted,
                         std::string(What) + " exceeded the time budget (" +
                             std::to_string(elapsed().count()) +
                             " ms elapsed)");
  }

private:
  const Budget Limits;
  const std::chrono::steady_clock::time_point Start;
  const std::optional<std::chrono::steady_clock::time_point> Deadline;
  mutable std::atomic<bool> Stopped{false};
  std::atomic<bool> Cancelled{false};
};

} // namespace cable

#endif // CABLE_SUPPORT_BUDGET_H
