//===- support/Failpoint.cpp - Fault-injection points ----------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Failpoint.h"

#include "support/CrashDump.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

using namespace cable;

std::atomic<uint32_t> Failpoint::NumArmed{0};

namespace {

enum class FailMode { Error, Crash, Hang };

struct ArmedPoint {
  FailMode Mode = FailMode::Error;
  uint64_t TriggerAt = 1; ///< 1-based hit index that fires the fault.
  uint64_t Hits = 0;
  bool Fired = false; ///< error mode fires exactly once.
};

struct Registry {
  std::mutex Mutex;
  std::map<std::string, ArmedPoint, std::less<>> Armed;
  std::vector<std::string> Registered;
};

/// Meyers singleton: hit sites register from static initializers, so the
/// registry must be constructed on first use, not in link order.
Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

Failpoint::Registrar::Registrar(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Registered.emplace_back(Name);
}

std::vector<std::string> Failpoint::registeredNames() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<std::string> Names = R.Registered;
  std::sort(Names.begin(), Names.end());
  Names.erase(std::unique(Names.begin(), Names.end()), Names.end());
  return Names;
}

uint64_t Failpoint::hitCount(std::string_view Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Armed.find(Name);
  return It == R.Armed.end() ? 0 : It->second.Hits;
}

void Failpoint::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Armed.clear();
  NumArmed.store(0, std::memory_order_relaxed);
}

Status Failpoint::configure(std::string_view Spec) {
  std::map<std::string, ArmedPoint, std::less<>> Armed;
  for (const std::string &Clause : splitString(Spec, ',')) {
    std::string_view Text = trimString(Clause);
    if (Text.empty())
      continue;
    size_t Eq = Text.find('=');
    if (Eq == std::string_view::npos || Eq == 0)
      return Status::error(ErrorCode::InvalidArgument,
                           "bad failpoint clause '" + std::string(Text) +
                               "' (expected name=error|crash|hang[@N])");
    std::string Name(Text.substr(0, Eq));
    std::string_view ModeText = Text.substr(Eq + 1);
    ArmedPoint P;
    if (size_t At = ModeText.find('@'); At != std::string_view::npos) {
      std::optional<unsigned long> N =
          parseUnsignedLong(ModeText.substr(At + 1));
      if (!N || *N == 0)
        return Status::error(ErrorCode::InvalidArgument,
                             "bad failpoint trigger index in '" +
                                 std::string(Text) + "' (expected @N, N >= 1)");
      P.TriggerAt = *N;
      ModeText = ModeText.substr(0, At);
    }
    if (ModeText == "error")
      P.Mode = FailMode::Error;
    else if (ModeText == "crash")
      P.Mode = FailMode::Crash;
    else if (ModeText == "hang")
      P.Mode = FailMode::Hang;
    else
      return Status::error(ErrorCode::InvalidArgument,
                           "bad failpoint mode '" + std::string(ModeText) +
                               "' in '" + std::string(Text) +
                               "' (expected error, crash, or hang)");
    Armed.insert_or_assign(std::move(Name), P);
  }

  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Armed = std::move(Armed);
  NumArmed.store(static_cast<uint32_t>(R.Armed.size()),
                 std::memory_order_relaxed);
  return Status::ok();
}

Status Failpoint::configureFromEnv() {
  const char *Spec = std::getenv("CABLE_FAILPOINTS");
  if (!Spec || !*Spec)
    return Status::ok();
  return configure(Spec);
}

Status Failpoint::hitSlow(const char *Name) {
  Registry &R = registry();
  std::unique_lock<std::mutex> Lock(R.Mutex);
  auto It = R.Armed.find(std::string_view(Name));
  if (It == R.Armed.end())
    return Status::ok();
  ArmedPoint &P = It->second;
  ++P.Hits;
  Metrics::counter("failpoint.hits").add();
  if (P.Hits != P.TriggerAt || P.Fired)
    return Status::ok();
  const char *ModeName = P.Mode == FailMode::Crash  ? "crash"
                         : P.Mode == FailMode::Hang ? "hang"
                                                    : "error";
  CABLE_LOG_WARN("failpoint", "failpoint-hit", "armed failpoint triggered",
                 {Log::str("name", Name), Log::str("mode", ModeName),
                  Log::num("hit", static_cast<int64_t>(P.Hits))});
  if (P.Mode == FailMode::Crash) {
    // Simulate abrupt process death: no stdio flush, no destructors, no
    // atexit — buffered-but-unsynced state must not survive. The flight
    // recorder is the one component allowed to see this coming: the dump
    // (when installed) is what the kill matrix reads post-mortem.
    CABLE_LOG_ERROR("failpoint", "failpoint-crash",
                    "failpoint killing the process",
                    {Log::str("name", Name)});
    CrashDump::dumpNow("failpoint-crash");
    std::_Exit(kCrashExitCode);
  }
  if (P.Mode == FailMode::Hang) {
    // Simulate a wedged process. The registry lock is released first so
    // other threads (and other failpoints) stay functional while this
    // thread sleeps; only a supervisor's deadline ends the hang (SIGKILL).
    Lock.unlock();
    for (;;)
      std::this_thread::sleep_for(std::chrono::seconds(3600));
  }
  P.Fired = true;
  return Status::error(ErrorCode::IoError,
                       "failpoint '" + std::string(Name) +
                           "' injected an error (hit " +
                           std::to_string(P.Hits) + ")");
}
