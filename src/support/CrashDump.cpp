//===- support/CrashDump.cpp - Fatal-path flight recorder ------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Everything here splits into two worlds:
//
//  - Normal-context setup (install, registerSignalArtifacts): may allocate,
//    format, open files, take locks. All strings the fatal path will need
//    are copied into fixed static buffers here.
//  - The fatal path (dumpNow, writeArtifactsFromSignal, the handlers): only
//    async-signal-safe operations — open/write/fsync/close/unlink on
//    pre-arranged paths, memcpy into static buffers, and the three
//    substrates' signal-safe readers (Log::copyCrashRecords,
//    Metrics::crashIndexRead, TraceLog::crashStackRead).
//
// First dump wins: GDumped is an atomic exchange, so the SIGABRT raised by
// the terminate handler's abort() cannot write a second document over the
// first.
//
//===----------------------------------------------------------------------===//

#include "support/CrashDump.h"

#include "support/BuildInfo.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/TraceEvent.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include <fcntl.h>
#include <unistd.h>

using namespace cable;

namespace {

//===----------------------------------------------------------------------===//
// Fixed state, filled in normal context, read on the fatal path.
//===----------------------------------------------------------------------===//

constexpr size_t kMaxPath = 1024;
constexpr size_t kMaxMetrics = 4096;

char GDir[kMaxPath];
char GDumpPath[kMaxPath + 64];
char GStamp[512]; ///< `"tool":...,"version":...,"instrumented":...` fragment
int GFd = -1;
std::atomic<bool> GInstalled{false};
std::atomic<int> GDumped{0};
std::terminate_handler GPrevTerminate = nullptr;

// Signal-exit artifact registration (independent of the crash dir).
char GLogOut[kMaxPath];
char GMetricsOut[kMaxPath];
char GReportOut[kMaxPath];
char GArgsJson[4096]; ///< pre-rendered `["argv1","argv2",...]`
std::atomic<bool> GArtifactsRegistered{false};
std::atomic<int> GArtifactsWritten{0};

// Scratch for the fatal path only. Static so a signal handler never touches
// the stack guard or the heap; GDumped/GArtifactsWritten serialize use.
char GCrashLogBuf[64 * 1024];
Metrics::CrashEntry GMetricsBuf[kMaxMetrics];

//===----------------------------------------------------------------------===//
// SigWriter: buffered write(2), nothing else.
//===----------------------------------------------------------------------===//

class SigWriter {
public:
  explicit SigWriter(int Fd) : Fd(Fd) {}

  void flush() {
    const char *P = Buf;
    size_t Left = Len;
    while (Left > 0) {
      ssize_t N = ::write(Fd, P, Left);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        break; // nowhere to report a failed crash write
      }
      P += N;
      Left -= static_cast<size_t>(N);
    }
    Len = 0;
  }

  void put(char C) {
    if (Len == sizeof(Buf))
      flush();
    Buf[Len++] = C;
  }

  void putBytes(const char *P, size_t N) {
    for (size_t I = 0; I < N; ++I)
      put(P[I]);
  }

  void puts(const char *S) {
    while (*S)
      put(*S++);
  }

  void putU64(uint64_t V) {
    char Tmp[24];
    size_t I = 0;
    do {
      Tmp[I++] = static_cast<char>('0' + V % 10);
      V /= 10;
    } while (V != 0);
    while (I > 0)
      put(Tmp[--I]);
  }

  void putI64(int64_t V) {
    if (V < 0) {
      put('-');
      putU64(static_cast<uint64_t>(-(V + 1)) + 1);
    } else {
      putU64(static_cast<uint64_t>(V));
    }
  }

  /// Quoted JSON string; same pure-ASCII policy as Log's renderer.
  void putQuoted(const char *S) {
    static const char Hex[] = "0123456789abcdef";
    put('"');
    for (const unsigned char *P = reinterpret_cast<const unsigned char *>(S);
         *P != 0; ++P) {
      unsigned char C = *P;
      if (C == '"' || C == '\\') {
        put('\\');
        put(static_cast<char>(C));
      } else if (C < 0x20 || C >= 0x7F) {
        put('\\');
        put('u');
        put('0');
        put('0');
        put(Hex[C >> 4]);
        put(Hex[C & 15]);
      } else {
        put(static_cast<char>(C));
      }
    }
    put('"');
  }

private:
  int Fd;
  size_t Len = 0;
  char Buf[4096];
};

//===----------------------------------------------------------------------===//
// Shared fatal-path pieces.
//===----------------------------------------------------------------------===//

void formatStamp(const char *Tool) {
  if (GStamp[0] != '\0')
    return;
  std::snprintf(GStamp, sizeof(GStamp),
                "\"tool\":\"%s\",\"version\":\"%s\",\"git_sha\":\"%s\","
                "\"build_type\":\"%s\",\"sanitize\":\"%s\","
                "\"instrumented\":%s",
                Tool, buildinfo::kVersion, buildinfo::kGitSha,
                buildinfo::kBuildType, buildinfo::kSanitize,
                buildinfo::kInstrumented ? "true" : "false");
}

/// `"metrics":{"counters":{...},"gauges":{...},"histograms":{...}}` value
/// from the crash index. Gauges carry value/high, histograms count/sum/max
/// (bucket arrays are a normal snapshot's job).
void writeCrashMetricsObject(SigWriter &W) {
  size_t N = Metrics::crashIndexRead(GMetricsBuf, kMaxMetrics);
  W.puts("{\"counters\":{");
  bool First = true;
  for (size_t I = 0; I < N; ++I) {
    if (GMetricsBuf[I].K != Metrics::Sample::KindCounter)
      continue;
    if (!First)
      W.put(',');
    First = false;
    W.putQuoted(GMetricsBuf[I].Name);
    W.put(':');
    W.putU64(GMetricsBuf[I].Count);
  }
  W.puts("},\"gauges\":{");
  First = true;
  for (size_t I = 0; I < N; ++I) {
    if (GMetricsBuf[I].K != Metrics::Sample::KindGauge)
      continue;
    if (!First)
      W.put(',');
    First = false;
    W.putQuoted(GMetricsBuf[I].Name);
    W.puts(":{\"value\":");
    W.putI64(GMetricsBuf[I].Value);
    W.puts(",\"high\":");
    W.putI64(GMetricsBuf[I].High);
    W.put('}');
  }
  W.puts("},\"histograms\":{");
  First = true;
  for (size_t I = 0; I < N; ++I) {
    if (GMetricsBuf[I].K != Metrics::Sample::KindHistogram)
      continue;
    if (!First)
      W.put(',');
    First = false;
    W.putQuoted(GMetricsBuf[I].Name);
    W.puts(":{\"count\":");
    W.putU64(GMetricsBuf[I].Count);
    W.puts(",\"sum\":");
    W.putU64(GMetricsBuf[I].Sum);
    W.puts(",\"max\":");
    W.putU64(GMetricsBuf[I].Max);
    W.put('}');
  }
  W.puts("}}");
}

/// Comma-separated crash-ring records (pre-rendered JSON objects), written
/// as array elements. Returns how many were emitted.
size_t writeCrashRecordsArray(SigWriter &W) {
  size_t Bytes = Log::copyCrashRecords(GCrashLogBuf, sizeof(GCrashLogBuf));
  size_t Count = 0;
  size_t LineStart = 0;
  for (size_t I = 0; I <= Bytes; ++I) {
    if (I < Bytes && GCrashLogBuf[I] != '\n')
      continue;
    if (I > LineStart) {
      if (Count > 0)
        W.put(',');
      W.putBytes(GCrashLogBuf + LineStart, I - LineStart);
      ++Count;
    }
    LineStart = I + 1;
  }
  return Count;
}

void openDumpFile(int Pid) {
  std::snprintf(GDumpPath, sizeof(GDumpPath), "%s/crash.%d.json", GDir, Pid);
  GFd = ::open(GDumpPath, O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
}

//===----------------------------------------------------------------------===//
// Handlers.
//===----------------------------------------------------------------------===//

void fatalSignalHandler(int Sig) {
  CrashDump::dumpNow("signal", Sig);
  // Restore the default disposition and re-raise so the wait status still
  // says "killed by Sig" — the shard supervisor's crash accounting and the
  // kill matrix both key off it.
  ::signal(Sig, SIG_DFL);
  ::raise(Sig);
}

[[noreturn]] void terminateHandler() {
  CrashDump::dumpNow("terminate");
  if (GPrevTerminate != nullptr && GPrevTerminate != terminateHandler) {
    GPrevTerminate();
  }
  std::abort(); // reaches the SIGABRT handler; GDumped makes it a no-op
}

} // namespace

//===----------------------------------------------------------------------===//
// Public surface.
//===----------------------------------------------------------------------===//

void CrashDump::install(const char *Tool) {
  const char *Dir = std::getenv("CABLE_CRASH_DIR");
  if (Dir == nullptr || *Dir == '\0')
    return;
  installAt(Tool, Dir);
}

void CrashDump::installAt(const char *Tool, const char *Dir) {
  if (GInstalled.load(std::memory_order_relaxed))
    return;
  std::snprintf(GDir, sizeof(GDir), "%s", Dir);
  formatStamp(Tool);
  openDumpFile(static_cast<int>(::getpid()));
  if (GFd < 0)
    return; // unwritable directory: stay disarmed rather than half-armed

  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = fatalSignalHandler;
  sigemptyset(&SA.sa_mask);
  for (int Sig : {SIGSEGV, SIGBUS, SIGABRT})
    ::sigaction(Sig, &SA, nullptr);
  GPrevTerminate = std::set_terminate(terminateHandler);

  Log::setCrashCapture(true);
  TraceLog::setStackCapture(true);
  GInstalled.store(true, std::memory_order_release);
}

bool CrashDump::installed() {
  return GInstalled.load(std::memory_order_relaxed);
}

const char *CrashDump::directory() {
  return GInstalled.load(std::memory_order_relaxed) ? GDir : "";
}

std::string CrashDump::dumpPathForPid(int Pid) {
  if (!GInstalled.load(std::memory_order_relaxed))
    return std::string();
  return std::string(GDir) + "/crash." + std::to_string(Pid) + ".json";
}

void CrashDump::reinstallAfterFork() {
  // Artifact paths belong to the parent; a worker flushing them on SIGTERM
  // would clobber the supervisor's files.
  GArtifactsRegistered.store(false, std::memory_order_relaxed);
  GArtifactsWritten.store(0, std::memory_order_relaxed);
  if (!GInstalled.load(std::memory_order_relaxed))
    return;
  if (GFd >= 0)
    ::close(GFd);
  GDumped.store(0, std::memory_order_relaxed);
  openDumpFile(static_cast<int>(::getpid()));
  if (GFd < 0)
    GInstalled.store(false, std::memory_order_relaxed);
}

void CrashDump::disarm() {
  if (!GInstalled.load(std::memory_order_relaxed))
    return;
  GInstalled.store(false, std::memory_order_relaxed);
  if (GFd >= 0)
    ::close(GFd);
  GFd = -1;
  if (GDumped.load(std::memory_order_relaxed) == 0)
    ::unlink(GDumpPath); // clean exits leave no empty litter
}

bool CrashDump::dumpNow(const char *Reason, int Sig) {
  if (!GInstalled.load(std::memory_order_acquire) || GFd < 0)
    return false;
  if (GDumped.exchange(1, std::memory_order_acq_rel) != 0)
    return false;

  SigWriter W(GFd);
  W.puts("{\"schema\":\"cable-crashdump/1\",");
  W.puts(GStamp);
  W.puts(",\"pid\":");
  W.putU64(static_cast<uint64_t>(::getpid()));
  W.puts(",\"reason\":");
  W.putQuoted(Reason);
  if (Sig != 0) {
    W.puts(",\"signal\":");
    W.putI64(Sig);
  }

  W.puts(",\"log_records\":[");
  writeCrashRecordsArray(W);
  W.put(']');

  W.puts(",\"span_stacks\":[");
  size_t NumStacks = TraceLog::crashStackCount();
  bool FirstStack = true;
  for (size_t I = 0; I < NumStacks; ++I) {
    TraceLog::CrashStackView V;
    if (!TraceLog::crashStackRead(I, V))
      continue;
    if (!FirstStack)
      W.put(',');
    FirstStack = false;
    W.puts("{\"tid\":");
    W.putU64(V.Tid);
    W.puts(",\"thread\":");
    W.putQuoted(V.ThreadName);
    W.puts(",\"stack\":[");
    for (uint32_t F = 0; F < V.Depth; ++F) {
      if (F > 0)
        W.put(',');
      W.putQuoted(V.Frames + F * TraceLog::kCrashStackNameBytes);
    }
    W.puts("]}");
  }
  W.put(']');

  W.puts(",\"metrics\":");
  writeCrashMetricsObject(W);
  W.puts("}\n");
  W.flush();
  ::fsync(GFd);
  return true;
}

void CrashDump::registerSignalArtifacts(const char *Tool,
                                        const std::string &LogOut,
                                        const std::string &MetricsOut,
                                        const std::string &ReportOut,
                                        const std::vector<std::string> &Args) {
  formatStamp(Tool);
  std::snprintf(GLogOut, sizeof(GLogOut), "%s", LogOut.c_str());
  std::snprintf(GMetricsOut, sizeof(GMetricsOut), "%s", MetricsOut.c_str());
  std::snprintf(GReportOut, sizeof(GReportOut), "%s", ReportOut.c_str());

  // Pre-escape argv here, in normal context, into a fixed buffer the
  // handler can emit verbatim.
  std::string Rendered = "[";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I > 0)
      Rendered += ',';
    Rendered += '"';
    for (unsigned char C : Args[I]) {
      if (C == '"' || C == '\\') {
        Rendered += '\\';
        Rendered += static_cast<char>(C);
      } else if (C < 0x20 || C >= 0x7F) {
        static const char Hex[] = "0123456789abcdef";
        Rendered += "\\u00";
        Rendered += Hex[C >> 4];
        Rendered += Hex[C & 15];
      } else {
        Rendered += static_cast<char>(C);
      }
    }
    Rendered += '"';
    if (Rendered.size() >= sizeof(GArgsJson) - 8) {
      Rendered += '"'; // keep the document valid if argv is absurd
      break;
    }
  }
  Rendered += ']';
  std::snprintf(GArgsJson, sizeof(GArgsJson), "%s", Rendered.c_str());
  GArtifactsWritten.store(0, std::memory_order_relaxed);
  GArtifactsRegistered.store(true, std::memory_order_release);
}

void CrashDump::writeArtifactsFromSignal(int ExitCode) {
  if (!GArtifactsRegistered.load(std::memory_order_acquire))
    return;
  if (GArtifactsWritten.exchange(1, std::memory_order_acq_rel) != 0)
    return;

  if (GMetricsOut[0] != '\0') {
    int Fd = ::open(GMetricsOut, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (Fd >= 0) {
      SigWriter W(Fd);
      W.puts("{\"schema\":\"cable-metrics/1\",");
      W.puts(GStamp);
      W.puts(",\"interrupted\":true,\"metrics\":");
      writeCrashMetricsObject(W);
      W.puts("}\n");
      W.flush();
      ::fsync(Fd);
      ::close(Fd);
    }
  }

  if (GReportOut[0] != '\0') {
    int Fd = ::open(GReportOut, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (Fd >= 0) {
      SigWriter W(Fd);
      W.puts("{\"schema\":\"cable-run-report/1\",");
      W.puts(GStamp);
      W.puts(",\"args\":");
      W.puts(GArgsJson);
      W.puts(",\"truncated\":false,\"clean_exit\":false,\"exit_code\":");
      W.putI64(ExitCode);
      W.puts(",\"interrupted\":true,\"metrics\":");
      writeCrashMetricsObject(W);
      W.puts("}\n");
      W.flush();
      ::fsync(Fd);
      ::close(Fd);
    }
  }

  if (GLogOut[0] != '\0') {
    int Fd = ::open(GLogOut, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (Fd >= 0) {
      SigWriter W(Fd);
      // Reduced header: no drain (locks), so records come from the crash
      // ring — the last events, which is what an interrupted run can give.
      W.puts("{\"schema\":\"cable-log/1\",");
      W.puts(GStamp);
      W.puts(",\"pid\":");
      W.putU64(static_cast<uint64_t>(::getpid()));
      W.puts(",\"interrupted\":true}\n");
      size_t Bytes =
          Log::copyCrashRecords(GCrashLogBuf, sizeof(GCrashLogBuf));
      W.putBytes(GCrashLogBuf, Bytes);
      W.flush();
      ::fsync(Fd);
      ::close(Fd);
    }
  }
}
