//===- support/Json.h - Minimal JSON emission and validation ----*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest JSON surface the observability layer needs, with no
/// external dependency:
///
///  - JsonWriter: a push-style emitter (objects, arrays, scalars) that
///    handles escaping and comma placement, used by the metrics snapshot,
///    the trace-event exporter, run reports, and the bench JSON files.
///    Output is deterministic: keys are emitted in the order the caller
///    pushes them, numbers via printf with a fixed format.
///  - validateJson: a strict recursive-descent syntax checker used by the
///    test suite and the bench harness's self-check, so "every bench
///    binary emits valid JSON" can be asserted without python.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_JSON_H
#define CABLE_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cable {

/// Push-style JSON emitter. Usage:
///
///   JsonWriter W;
///   W.beginObject();
///   W.key("schema"); W.value("cable-metrics/1");
///   W.key("counts"); W.beginArray(); W.value(1); W.value(2); W.endArray();
///   W.endObject();
///   std::string Doc = W.take();
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emits an object key (must be inside an object).
  void key(std::string_view K);

  void value(std::string_view S);
  void value(const char *S) { value(std::string_view(S)); }
  void value(double D);
  void value(uint64_t N);
  void value(int64_t N);
  void value(bool B);
  void valueNull();

  /// Splices an already-serialized JSON value (e.g. a nested snapshot).
  void rawValue(std::string_view Json);

  /// key() + value() in one call.
  template <typename T> void member(std::string_view K, T V) {
    key(K);
    value(V);
  }

  /// The finished document; the writer is left empty.
  std::string take() { return std::move(Out); }
  const std::string &text() const { return Out; }

  /// Escapes \p S as a JSON string literal, quotes included.
  static std::string quote(std::string_view S);

private:
  void comma();

  std::string Out;
  /// Per nesting level: whether a value was already emitted (comma needed).
  std::vector<bool> NeedComma;
  bool PendingKey = false;
};

/// Strict JSON syntax check. Returns true when \p Text is exactly one
/// valid JSON value (surrounded by optional whitespace); on failure fills
/// \p Error with a byte-offset-positioned message.
bool validateJson(std::string_view Text, std::string &Error);

} // namespace cable

#endif // CABLE_SUPPORT_JSON_H
