//===- support/Failpoint.h - Fault-injection points -------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A failpoint is a named hook compiled into an I/O or dispatch path where
/// the crash-recovery suite can inject a fault. Production cost is one
/// relaxed atomic load per hit: when no failpoint is armed, hit() never
/// touches the registry.
///
/// Arming happens through the environment:
///
///   CABLE_FAILPOINTS=journal-append=crash@7,file-read=error
///
/// Each clause is `name=mode[@N]` (N >= 1, default 1). The Nth time the
/// named failpoint is hit,
///
///  - `error` makes that hit return an io-error Status, once; the caller
///    propagates it like a real syscall failure;
///  - `crash` terminates the process immediately with std::_Exit(86) —
///    no stdio flush, no destructors — simulating power loss / SIGKILL
///    (kCrashExitCode, so harnesses can tell an injected crash from a
///    genuine one);
///  - `hang` parks the hitting thread in an unbounded sleep, simulating a
///    wedged process (a worker stuck in a kernel call, a livelock). Only
///    meaningful at sites supervised by a deadline — the shard kill
///    matrix arms it in worker processes to force the supervisor's
///    timeout/kill/reassign path.
///
/// Hit sites self-register via Failpoint::Registrar globals so harnesses
/// can enumerate every instrumented point (`cable-cli --list-failpoints`)
/// without grepping the source.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_FAILPOINT_H
#define CABLE_SUPPORT_FAILPOINT_H

#include "support/Status.h"

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

namespace cable {

class Failpoint {
public:
  /// Exit code of a `crash`-mode termination.
  static constexpr int kCrashExitCode = 86;

  /// The fault check. Call at the top of an instrumented operation; on an
  /// ok Status proceed, otherwise propagate the injected failure. With no
  /// failpoint armed this is a single relaxed atomic load.
  static Status hit(const char *Name) {
    if (NumArmed.load(std::memory_order_relaxed) == 0)
      return Status::ok();
    return hitSlow(Name);
  }

  /// True when any failpoint is armed (the hit() fast-path predicate).
  static bool anyArmed() {
    return NumArmed.load(std::memory_order_relaxed) != 0;
  }

  /// Arms failpoints from a spec string (see file comment). Replaces the
  /// current configuration. Unknown names are accepted — registration
  /// happens at static-init time in whatever binary links the hit site,
  /// and a spec may name a point the current binary never reaches.
  /// Returns invalid-argument on a malformed clause.
  static Status configure(std::string_view Spec);

  /// configure(getenv("CABLE_FAILPOINTS")), a no-op when unset. Returns
  /// the configure() status.
  static Status configureFromEnv();

  /// Disarms everything and clears hit counters (test isolation).
  static void reset();

  /// Names of every failpoint compiled into this binary, sorted.
  static std::vector<std::string> registeredNames();

  /// Times the named failpoint has been hit while armed (testing).
  static uint64_t hitCount(std::string_view Name);

  /// Registers a failpoint name at static-init time:
  ///   static Failpoint::Registrar Reg("journal-append");
  class Registrar {
  public:
    explicit Registrar(const char *Name);
  };

private:
  static Status hitSlow(const char *Name);

  static std::atomic<uint32_t> NumArmed;
};

} // namespace cable

#endif // CABLE_SUPPORT_FAILPOINT_H
