//===- support/Dot.h - Graphviz DOT emission --------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small writer for Graphviz DOT files. The paper's Cable tool is built on
/// Dotty; this reproduction exports the same structures (automata and
/// concept lattices) as DOT text so any Graphviz viewer can stand in for
/// Dotty.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_DOT_H
#define CABLE_SUPPORT_DOT_H

#include <string>
#include <string_view>
#include <vector>

namespace cable {

/// Accumulates nodes and edges and renders a digraph as DOT text.
class DotWriter {
public:
  explicit DotWriter(std::string GraphName) : GraphName(std::move(GraphName)) {}

  /// Escapes \p Text for use inside a double-quoted DOT string.
  static std::string escape(std::string_view Text);

  /// Adds a node named \p Id with display label \p Label; \p ExtraAttrs is
  /// raw attribute text (may be empty), e.g. "shape=doublecircle".
  void addNode(std::string_view Id, std::string_view Label,
               std::string_view ExtraAttrs = "");

  /// Adds an edge with display label \p Label (may be empty).
  void addEdge(std::string_view From, std::string_view To,
               std::string_view Label = "");

  /// Adds a raw line inside the graph body (for rankdir etc.).
  void addRaw(std::string_view Line);

  /// Renders the whole digraph.
  std::string str() const;

private:
  std::string GraphName;
  std::vector<std::string> Lines;
};

} // namespace cable

#endif // CABLE_SUPPORT_DOT_H
