//===- support/simd/Kernels.h - Vectorized bit-set kernels ------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime-dispatched word kernels for the set-algebra inner loops of
/// concept analysis. Every lattice builder bottoms out in BitVector
/// intersection / subset / popcount over the traces×transitions context;
/// these kernels are the single place that code is written, at three
/// levels:
///
///  - Scalar:   one word at a time — the reference implementation every
///              other level is differentially tested against.
///  - Unrolled: four words per iteration, enough ILP to saturate the
///              load ports on any 64-bit machine.
///  - Vector:   AVX2 on x86-64 (256-bit lanes, compiled in a separate
///              -mavx2 TU and only selected when the CPU reports AVX2),
///              NEON on aarch64. Falls back to Unrolled when neither is
///              compiled in or the CPU lacks the ISA.
///
/// Dispatch is resolved once per process from CPUID plus the env override
/// `CABLE_KERNEL=scalar|unrolled|avx2|neon` (an unsupported request
/// clamps down to the best available level); tests pin a level with
/// ForcedLevelGuard to run the differential battery at every level.
///
/// All kernels are pure word-array functions: they neither allocate nor
/// know about universe sizes. Read kernels take a TailMask applied to the
/// final word so a dirty tail (bits past size()) can never leak into a
/// popcount or subset verdict; mutating kernels rely on BitVector
/// re-clearing the tail after every operation.
///
/// The fused closure primitive is andSelectInto: intersect, into an
/// accumulator, every row of a packed row-major arena whose index is set
/// in a selector bit set. Context stores both orientations of the
/// incidence matrix as such arenas, so sigma and tau are each one
/// andSelectInto walking contiguous cache lines.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_SIMD_KERNELS_H
#define CABLE_SUPPORT_SIMD_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

// AVX2 availability is a build-system decision (a separate -mavx2 TU), so
// CABLE_KERNELS_HAVE_AVX2 is propagated PUBLIC from CMake. NEON is baseline
// on aarch64, so its macro is derived here from compiler predicates and is
// visible to every includer (the differential tests key their NEON arm on
// it).
#if defined(__aarch64__) && defined(__ARM_NEON)
#define CABLE_KERNELS_HAVE_NEON 1
#endif

namespace cable::simd {

/// Dispatch levels, ordered by preference. Vector means the best SIMD ISA
/// this build knows for the host architecture (AVX2 on x86-64, NEON on
/// aarch64); levelName() reports which.
enum class Level : int { Scalar = 0, Unrolled = 1, Vector = 2 };

/// One resolved implementation set. All word counts are in 64-bit words.
struct KernelOps {
  /// Human-readable level name ("scalar", "unrolled", "avx2", "neon").
  const char *Name;

  /// Dst[i] &= Src[i].
  void (*AndInto)(uint64_t *Dst, const uint64_t *Src, size_t NumWords);
  /// Dst[i] |= Src[i].
  void (*OrInto)(uint64_t *Dst, const uint64_t *Src, size_t NumWords);
  /// Dst[i] ^= Src[i].
  void (*XorInto)(uint64_t *Dst, const uint64_t *Src, size_t NumWords);
  /// Dst[i] &= ~Src[i].
  void (*AndNotInto)(uint64_t *Dst, const uint64_t *Src, size_t NumWords);
  /// True iff (A[i] & ~B[i]) == 0 for all i, with TailMask applied to the
  /// final word of both operands.
  bool (*IsSubsetOf)(const uint64_t *A, const uint64_t *B, size_t NumWords,
                     uint64_t TailMask);
  /// True iff (A[i] & B[i]) != 0 for some i, with TailMask applied to the
  /// final word of both operands.
  bool (*Intersects)(const uint64_t *A, const uint64_t *B, size_t NumWords,
                     uint64_t TailMask);
  /// Total set bits, with TailMask applied to the final word.
  size_t (*Popcount)(const uint64_t *A, size_t NumWords, uint64_t TailMask);
  /// Dst[i] &= Srcs[0][i] & ... & Srcs[K-1][i] — the fused multi-operand
  /// intersection at the heart of closure; one pass over Dst regardless
  /// of K, blocked so the accumulator stays in registers.
  void (*AndManyInto)(uint64_t *Dst, const uint64_t *const *Srcs, size_t K,
                      size_t NumWords);
};

/// The active kernel table (one relaxed atomic load after first use).
const KernelOps &ops();

/// The level ops() currently dispatches to.
Level activeLevel();

/// The best level this build + CPU supports.
Level maxSupportedLevel();

/// Level name as used by CABLE_KERNEL ("scalar", "unrolled", and for
/// Vector whatever the host ISA is called).
const char *levelName(Level L);

/// Parses a CABLE_KERNEL value; accepts "scalar", "unrolled", "avx2",
/// "neon", and "vector". Returns nullopt for anything else.
std::optional<Level> parseLevel(std::string_view Name);

/// Pins dispatch to \p L (clamped to maxSupportedLevel). Test hook — the
/// differential suites run every level through this.
void forceLevel(Level L);

/// Restores CPUID/env-resolved dispatch after a forceLevel.
void resetLevel();

/// RAII forceLevel for tests: restores the previous level on scope exit.
class ForcedLevelGuard {
public:
  explicit ForcedLevelGuard(Level L) : Saved(activeLevel()) { forceLevel(L); }
  ~ForcedLevelGuard() { forceLevel(Saved); }
  ForcedLevelGuard(const ForcedLevelGuard &) = delete;
  ForcedLevelGuard &operator=(const ForcedLevelGuard &) = delete;

private:
  Level Saved;
};

/// Fused closure walk: for every bit p set in the selector, intersect row
/// p of the packed arena into Dst:
///
///   Dst[i] &= Arena[p * Stride + i]   for all selected p, i < NumWords
///
/// The caller presets Dst (setAll for a derivation operator). Rows are
/// gathered in batches and fed to the active AndManyInto so the Dst block
/// is touched once per batch, not once per row. NumWords <= Stride.
void andSelectInto(uint64_t *Dst, const uint64_t *Arena, size_t Stride,
                   const uint64_t *Sel, size_t SelWords, size_t NumWords);

namespace detail {
/// Per-level tables (exposed for the differential tests; scalarOps is the
/// reference implementation).
const KernelOps &scalarOps();
const KernelOps &unrolledOps();
#ifdef CABLE_KERNELS_HAVE_AVX2
const KernelOps &avx2Ops();
#endif
#ifdef CABLE_KERNELS_HAVE_NEON
const KernelOps &neonOps();
#endif
} // namespace detail

} // namespace cable::simd

#endif // CABLE_SUPPORT_SIMD_KERNELS_H
