//===- support/simd/KernelsAVX2.cpp - AVX2 bit-set kernels ----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The 256-bit lane implementations. This TU is the only one compiled with
// -mavx2 (see src/support/CMakeLists.txt), so nothing here may be called
// unless dispatch confirmed AVX2 via __builtin_cpu_supports — the rest of
// the binary stays runnable on any x86-64.
//
// All loads/stores are unaligned (vmovdqu): BitVector words live in
// std::vector storage with no alignment promise, and on every AVX2-era
// core an unaligned load of actually-aligned data costs the same as an
// aligned one.
//
//===----------------------------------------------------------------------===//

#include "support/simd/Kernels.h"

#ifdef CABLE_KERNELS_HAVE_AVX2

#include <bit>
#include <immintrin.h>

using namespace cable;
using namespace cable::simd;

namespace {

inline __m256i loadu(const uint64_t *P) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(P));
}

inline void storeu(uint64_t *P, __m256i V) {
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(P), V);
}

void avx2AndInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 16 <= N; I += 16) {
    storeu(Dst + I + 0, _mm256_and_si256(loadu(Dst + I + 0), loadu(Src + I + 0)));
    storeu(Dst + I + 4, _mm256_and_si256(loadu(Dst + I + 4), loadu(Src + I + 4)));
    storeu(Dst + I + 8, _mm256_and_si256(loadu(Dst + I + 8), loadu(Src + I + 8)));
    storeu(Dst + I + 12,
           _mm256_and_si256(loadu(Dst + I + 12), loadu(Src + I + 12)));
  }
  for (; I + 4 <= N; I += 4)
    storeu(Dst + I, _mm256_and_si256(loadu(Dst + I), loadu(Src + I)));
  for (; I < N; ++I)
    Dst[I] &= Src[I];
}

void avx2OrInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 16 <= N; I += 16) {
    storeu(Dst + I + 0, _mm256_or_si256(loadu(Dst + I + 0), loadu(Src + I + 0)));
    storeu(Dst + I + 4, _mm256_or_si256(loadu(Dst + I + 4), loadu(Src + I + 4)));
    storeu(Dst + I + 8, _mm256_or_si256(loadu(Dst + I + 8), loadu(Src + I + 8)));
    storeu(Dst + I + 12,
           _mm256_or_si256(loadu(Dst + I + 12), loadu(Src + I + 12)));
  }
  for (; I + 4 <= N; I += 4)
    storeu(Dst + I, _mm256_or_si256(loadu(Dst + I), loadu(Src + I)));
  for (; I < N; ++I)
    Dst[I] |= Src[I];
}

void avx2XorInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4)
    storeu(Dst + I, _mm256_xor_si256(loadu(Dst + I), loadu(Src + I)));
  for (; I < N; ++I)
    Dst[I] ^= Src[I];
}

void avx2AndNotInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  // andnot computes ~first & second, so Src goes first.
  for (; I + 4 <= N; I += 4)
    storeu(Dst + I, _mm256_andnot_si256(loadu(Src + I), loadu(Dst + I)));
  for (; I < N; ++I)
    Dst[I] &= ~Src[I];
}

bool avx2IsSubsetOf(const uint64_t *A, const uint64_t *B, size_t N,
                    uint64_t TailMask) {
  if (N == 0)
    return true;
  size_t Full = N - 1;
  size_t I = 0;
  for (; I + 4 <= Full; I += 4) {
    // A & ~B == andnot(B, A); testz sets ZF iff the whole lane is zero.
    __m256i Bad = _mm256_andnot_si256(loadu(B + I), loadu(A + I));
    if (!_mm256_testz_si256(Bad, Bad))
      return false;
  }
  for (; I < Full; ++I)
    if ((A[I] & ~B[I]) != 0)
      return false;
  return ((A[Full] & ~B[Full]) & TailMask) == 0;
}

bool avx2Intersects(const uint64_t *A, const uint64_t *B, size_t N,
                    uint64_t TailMask) {
  if (N == 0)
    return false;
  size_t Full = N - 1;
  size_t I = 0;
  for (; I + 4 <= Full; I += 4) {
    if (!_mm256_testz_si256(loadu(A + I), loadu(B + I)))
      return true;
  }
  for (; I < Full; ++I)
    if ((A[I] & B[I]) != 0)
      return true;
  return ((A[Full] & B[Full]) & TailMask) != 0;
}

size_t avx2Popcount(const uint64_t *A, size_t N, uint64_t TailMask) {
  // AVX2 has no vector popcount; four parallel POPCNT chains beat a
  // Harley-Seal reduction at the word counts contexts reach (tens).
  if (N == 0)
    return 0;
  size_t Full = N - 1;
  size_t C0 = 0, C1 = 0, C2 = 0, C3 = 0;
  size_t I = 0;
  for (; I + 4 <= Full; I += 4) {
    C0 += static_cast<size_t>(std::popcount(A[I + 0]));
    C1 += static_cast<size_t>(std::popcount(A[I + 1]));
    C2 += static_cast<size_t>(std::popcount(A[I + 2]));
    C3 += static_cast<size_t>(std::popcount(A[I + 3]));
  }
  for (; I < Full; ++I)
    C0 += static_cast<size_t>(std::popcount(A[I]));
  return C0 + C1 + C2 + C3 +
         static_cast<size_t>(std::popcount(A[Full] & TailMask));
}

void avx2AndManyInto(uint64_t *Dst, const uint64_t *const *Srcs, size_t K,
                     size_t N) {
  size_t I = 0;
  // 16-word (128-byte) blocks: four ymm accumulators stay resident while
  // every selected row streams through — the fused closure inner loop.
  for (; I + 16 <= N; I += 16) {
    __m256i W0 = loadu(Dst + I + 0);
    __m256i W1 = loadu(Dst + I + 4);
    __m256i W2 = loadu(Dst + I + 8);
    __m256i W3 = loadu(Dst + I + 12);
    for (size_t S = 0; S < K; ++S) {
      const uint64_t *Row = Srcs[S] + I;
      W0 = _mm256_and_si256(W0, loadu(Row + 0));
      W1 = _mm256_and_si256(W1, loadu(Row + 4));
      W2 = _mm256_and_si256(W2, loadu(Row + 8));
      W3 = _mm256_and_si256(W3, loadu(Row + 12));
    }
    storeu(Dst + I + 0, W0);
    storeu(Dst + I + 4, W1);
    storeu(Dst + I + 8, W2);
    storeu(Dst + I + 12, W3);
  }
  for (; I + 4 <= N; I += 4) {
    __m256i W = loadu(Dst + I);
    for (size_t S = 0; S < K; ++S)
      W = _mm256_and_si256(W, loadu(Srcs[S] + I));
    storeu(Dst + I, W);
  }
  for (; I < N; ++I) {
    uint64_t W = Dst[I];
    for (size_t S = 0; S < K; ++S)
      W &= Srcs[S][I];
    Dst[I] = W;
  }
}

} // namespace

const KernelOps &detail::avx2Ops() {
  static const KernelOps Ops = {
      "avx2",         avx2AndInto,   avx2OrInto,   avx2XorInto,
      avx2AndNotInto, avx2IsSubsetOf, avx2Intersects, avx2Popcount,
      avx2AndManyInto,
  };
  return Ops;
}

#endif // CABLE_KERNELS_HAVE_AVX2
