//===- support/simd/Kernels.cpp - Vectorized bit-set kernels --------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/simd/Kernels.h"

#include "support/Metrics.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#ifdef CABLE_KERNELS_HAVE_NEON
#include <arm_neon.h>
#endif

using namespace cable;
using namespace cable::simd;

//===----------------------------------------------------------------------===//
// Scalar level — the reference every other level is tested against.
//===----------------------------------------------------------------------===//

namespace {

void scalarAndInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] &= Src[I];
}

void scalarOrInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] |= Src[I];
}

void scalarXorInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] ^= Src[I];
}

void scalarAndNotInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] &= ~Src[I];
}

bool scalarIsSubsetOf(const uint64_t *A, const uint64_t *B, size_t N,
                      uint64_t TailMask) {
  if (N == 0)
    return true;
  for (size_t I = 0; I + 1 < N; ++I)
    if ((A[I] & ~B[I]) != 0)
      return false;
  return ((A[N - 1] & ~B[N - 1]) & TailMask) == 0;
}

bool scalarIntersects(const uint64_t *A, const uint64_t *B, size_t N,
                      uint64_t TailMask) {
  if (N == 0)
    return false;
  for (size_t I = 0; I + 1 < N; ++I)
    if ((A[I] & B[I]) != 0)
      return true;
  return ((A[N - 1] & B[N - 1]) & TailMask) != 0;
}

size_t scalarPopcount(const uint64_t *A, size_t N, uint64_t TailMask) {
  if (N == 0)
    return 0;
  size_t Count = 0;
  for (size_t I = 0; I + 1 < N; ++I)
    Count += static_cast<size_t>(std::popcount(A[I]));
  return Count + static_cast<size_t>(std::popcount(A[N - 1] & TailMask));
}

void scalarAndManyInto(uint64_t *Dst, const uint64_t *const *Srcs, size_t K,
                       size_t N) {
  for (size_t I = 0; I < N; ++I) {
    uint64_t W = Dst[I];
    for (size_t S = 0; S < K; ++S)
      W &= Srcs[S][I];
    Dst[I] = W;
  }
}

//===----------------------------------------------------------------------===//
// Unrolled level — four words per iteration.
//===----------------------------------------------------------------------===//

void unrolledAndInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    Dst[I + 0] &= Src[I + 0];
    Dst[I + 1] &= Src[I + 1];
    Dst[I + 2] &= Src[I + 2];
    Dst[I + 3] &= Src[I + 3];
  }
  for (; I < N; ++I)
    Dst[I] &= Src[I];
}

void unrolledOrInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    Dst[I + 0] |= Src[I + 0];
    Dst[I + 1] |= Src[I + 1];
    Dst[I + 2] |= Src[I + 2];
    Dst[I + 3] |= Src[I + 3];
  }
  for (; I < N; ++I)
    Dst[I] |= Src[I];
}

void unrolledXorInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    Dst[I + 0] ^= Src[I + 0];
    Dst[I + 1] ^= Src[I + 1];
    Dst[I + 2] ^= Src[I + 2];
    Dst[I + 3] ^= Src[I + 3];
  }
  for (; I < N; ++I)
    Dst[I] ^= Src[I];
}

void unrolledAndNotInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    Dst[I + 0] &= ~Src[I + 0];
    Dst[I + 1] &= ~Src[I + 1];
    Dst[I + 2] &= ~Src[I + 2];
    Dst[I + 3] &= ~Src[I + 3];
  }
  for (; I < N; ++I)
    Dst[I] &= ~Src[I];
}

bool unrolledIsSubsetOf(const uint64_t *A, const uint64_t *B, size_t N,
                        uint64_t TailMask) {
  if (N == 0)
    return true;
  size_t Full = N - 1;
  size_t I = 0;
  for (; I + 4 <= Full; I += 4) {
    uint64_t Acc = (A[I + 0] & ~B[I + 0]) | (A[I + 1] & ~B[I + 1]) |
                   (A[I + 2] & ~B[I + 2]) | (A[I + 3] & ~B[I + 3]);
    if (Acc != 0)
      return false;
  }
  for (; I < Full; ++I)
    if ((A[I] & ~B[I]) != 0)
      return false;
  return ((A[Full] & ~B[Full]) & TailMask) == 0;
}

bool unrolledIntersects(const uint64_t *A, const uint64_t *B, size_t N,
                        uint64_t TailMask) {
  if (N == 0)
    return false;
  size_t Full = N - 1;
  size_t I = 0;
  for (; I + 4 <= Full; I += 4) {
    uint64_t Acc = (A[I + 0] & B[I + 0]) | (A[I + 1] & B[I + 1]) |
                   (A[I + 2] & B[I + 2]) | (A[I + 3] & B[I + 3]);
    if (Acc != 0)
      return true;
  }
  for (; I < Full; ++I)
    if ((A[I] & B[I]) != 0)
      return true;
  return ((A[Full] & B[Full]) & TailMask) != 0;
}

size_t unrolledPopcount(const uint64_t *A, size_t N, uint64_t TailMask) {
  if (N == 0)
    return 0;
  size_t Full = N - 1;
  size_t C0 = 0, C1 = 0, C2 = 0, C3 = 0;
  size_t I = 0;
  for (; I + 4 <= Full; I += 4) {
    C0 += static_cast<size_t>(std::popcount(A[I + 0]));
    C1 += static_cast<size_t>(std::popcount(A[I + 1]));
    C2 += static_cast<size_t>(std::popcount(A[I + 2]));
    C3 += static_cast<size_t>(std::popcount(A[I + 3]));
  }
  for (; I < Full; ++I)
    C0 += static_cast<size_t>(std::popcount(A[I]));
  return C0 + C1 + C2 + C3 +
         static_cast<size_t>(std::popcount(A[Full] & TailMask));
}

void unrolledAndManyInto(uint64_t *Dst, const uint64_t *const *Srcs, size_t K,
                         size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    uint64_t W0 = Dst[I + 0], W1 = Dst[I + 1];
    uint64_t W2 = Dst[I + 2], W3 = Dst[I + 3];
    for (size_t S = 0; S < K; ++S) {
      const uint64_t *Row = Srcs[S] + I;
      W0 &= Row[0];
      W1 &= Row[1];
      W2 &= Row[2];
      W3 &= Row[3];
    }
    Dst[I + 0] = W0;
    Dst[I + 1] = W1;
    Dst[I + 2] = W2;
    Dst[I + 3] = W3;
  }
  for (; I < N; ++I) {
    uint64_t W = Dst[I];
    for (size_t S = 0; S < K; ++S)
      W &= Srcs[S][I];
    Dst[I] = W;
  }
}

#ifdef CABLE_KERNELS_HAVE_NEON

//===----------------------------------------------------------------------===//
// NEON level (aarch64) — 128-bit lanes, two per iteration.
//===----------------------------------------------------------------------===//

void neonAndInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    vst1q_u64(Dst + I, vandq_u64(vld1q_u64(Dst + I), vld1q_u64(Src + I)));
    vst1q_u64(Dst + I + 2,
              vandq_u64(vld1q_u64(Dst + I + 2), vld1q_u64(Src + I + 2)));
  }
  for (; I < N; ++I)
    Dst[I] &= Src[I];
}

void neonOrInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    vst1q_u64(Dst + I, vorrq_u64(vld1q_u64(Dst + I), vld1q_u64(Src + I)));
    vst1q_u64(Dst + I + 2,
              vorrq_u64(vld1q_u64(Dst + I + 2), vld1q_u64(Src + I + 2)));
  }
  for (; I < N; ++I)
    Dst[I] |= Src[I];
}

void neonXorInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    vst1q_u64(Dst + I, veorq_u64(vld1q_u64(Dst + I), vld1q_u64(Src + I)));
    vst1q_u64(Dst + I + 2,
              veorq_u64(vld1q_u64(Dst + I + 2), vld1q_u64(Src + I + 2)));
  }
  for (; I < N; ++I)
    Dst[I] ^= Src[I];
}

void neonAndNotInto(uint64_t *Dst, const uint64_t *Src, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    vst1q_u64(Dst + I, vbicq_u64(vld1q_u64(Dst + I), vld1q_u64(Src + I)));
    vst1q_u64(Dst + I + 2,
              vbicq_u64(vld1q_u64(Dst + I + 2), vld1q_u64(Src + I + 2)));
  }
  for (; I < N; ++I)
    Dst[I] &= ~Src[I];
}

void neonAndManyInto(uint64_t *Dst, const uint64_t *const *Srcs, size_t K,
                     size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    uint64x2_t W0 = vld1q_u64(Dst + I);
    uint64x2_t W1 = vld1q_u64(Dst + I + 2);
    for (size_t S = 0; S < K; ++S) {
      const uint64_t *Row = Srcs[S] + I;
      W0 = vandq_u64(W0, vld1q_u64(Row));
      W1 = vandq_u64(W1, vld1q_u64(Row + 2));
    }
    vst1q_u64(Dst + I, W0);
    vst1q_u64(Dst + I + 2, W1);
  }
  for (; I < N; ++I) {
    uint64_t W = Dst[I];
    for (size_t S = 0; S < K; ++S)
      W &= Srcs[S][I];
    Dst[I] = W;
  }
}

#endif // CABLE_KERNELS_HAVE_NEON

} // namespace

const KernelOps &detail::scalarOps() {
  static const KernelOps Ops = {
      "scalar",         scalarAndInto,   scalarOrInto,
      scalarXorInto,    scalarAndNotInto, scalarIsSubsetOf,
      scalarIntersects, scalarPopcount,  scalarAndManyInto,
  };
  return Ops;
}

const KernelOps &detail::unrolledOps() {
  static const KernelOps Ops = {
      "unrolled",         unrolledAndInto,   unrolledOrInto,
      unrolledXorInto,    unrolledAndNotInto, unrolledIsSubsetOf,
      unrolledIntersects, unrolledPopcount,  unrolledAndManyInto,
  };
  return Ops;
}

#ifdef CABLE_KERNELS_HAVE_NEON
const KernelOps &detail::neonOps() {
  // Subset / intersects / popcount reuse the unrolled forms: on aarch64
  // the win is in the streaming AND family, and the scalar CNT paths are
  // already one instruction per word.
  static const KernelOps Ops = {
      "neon",             neonAndInto,      neonOrInto,
      neonXorInto,        neonAndNotInto,   unrolledIsSubsetOf,
      unrolledIntersects, unrolledPopcount, neonAndManyInto,
  };
  return Ops;
}
#endif

//===----------------------------------------------------------------------===//
// Dispatch.
//===----------------------------------------------------------------------===//

namespace {

Metrics::Gauge &DispatchLevel = Metrics::gauge("kernels.dispatch-level");
Metrics::Counter &FusedAndCalls = Metrics::counter("kernels.fused-and-calls");
Metrics::Counter &FusedAndWords = Metrics::counter("kernels.fused-and-words");

const KernelOps *tableFor(Level L) {
  switch (L) {
  case Level::Scalar:
    return &detail::scalarOps();
  case Level::Unrolled:
    return &detail::unrolledOps();
  case Level::Vector:
#if defined(CABLE_KERNELS_HAVE_AVX2)
    return &detail::avx2Ops();
#elif defined(CABLE_KERNELS_HAVE_NEON)
    return &detail::neonOps();
#else
    return &detail::unrolledOps();
#endif
  }
  return &detail::scalarOps();
}

Level hardwareMaxLevel() {
#if defined(CABLE_KERNELS_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") ? Level::Vector : Level::Unrolled;
#elif defined(CABLE_KERNELS_HAVE_NEON)
  return Level::Vector; // NEON is baseline on aarch64.
#else
  return Level::Unrolled;
#endif
}

Level clampToSupported(Level L) {
  return static_cast<int>(L) <= static_cast<int>(hardwareMaxLevel())
             ? L
             : hardwareMaxLevel();
}

/// Resolves the startup level: CABLE_KERNEL if set and recognized
/// (clamped to what the build + CPU supports), else the best available.
Level resolveStartupLevel() {
  if (const char *Env = std::getenv("CABLE_KERNEL"))
    if (std::optional<Level> L = parseLevel(Env))
      return clampToSupported(*L);
  return hardwareMaxLevel();
}

/// The active table. Lazily initialized with a CAS so concurrent first
/// uses (pool workers racing into their first closure) are safe; the
/// steady-state cost is one acquire load.
std::atomic<const KernelOps *> ActiveOps{nullptr};
std::atomic<int> ActiveLevelValue{-1};

const KernelOps *initialize() {
  // Concurrent first uses all resolve the same level (env + CPUID are
  // stable for the process lifetime), so racing plain atomic stores of
  // identical values is benign. Level is published before the table so a
  // reader that sees the table never sees a stale level.
  Level L = resolveStartupLevel();
  ActiveLevelValue.store(static_cast<int>(L), std::memory_order_release);
  DispatchLevel.set(static_cast<int64_t>(L));
  const KernelOps *Table = tableFor(L);
  ActiveOps.store(Table, std::memory_order_release);
  return Table;
}

} // namespace

const KernelOps &cable::simd::ops() {
  const KernelOps *Table = ActiveOps.load(std::memory_order_acquire);
  if (Table == nullptr)
    Table = initialize();
  return *Table;
}

Level cable::simd::activeLevel() {
  ops(); // Ensure resolved.
  return static_cast<Level>(ActiveLevelValue.load(std::memory_order_acquire));
}

Level cable::simd::maxSupportedLevel() { return hardwareMaxLevel(); }

const char *cable::simd::levelName(Level L) { return tableFor(L)->Name; }

std::optional<Level> cable::simd::parseLevel(std::string_view Name) {
  if (Name == "scalar")
    return Level::Scalar;
  if (Name == "unrolled")
    return Level::Unrolled;
  if (Name == "avx2" || Name == "neon" || Name == "vector")
    return Level::Vector;
  return std::nullopt;
}

void cable::simd::forceLevel(Level L) {
  // Same publish order as initialize(): level before table, so a reader
  // that sees the new table never sees a stale level.
  Level Clamped = clampToSupported(L);
  ActiveLevelValue.store(static_cast<int>(Clamped), std::memory_order_release);
  DispatchLevel.set(static_cast<int64_t>(Clamped));
  ActiveOps.store(tableFor(Clamped), std::memory_order_release);
}

void cable::simd::resetLevel() { forceLevel(resolveStartupLevel()); }

//===----------------------------------------------------------------------===//
// Fused closure driver.
//===----------------------------------------------------------------------===//

void cable::simd::andSelectInto(uint64_t *Dst, const uint64_t *Arena,
                                size_t Stride, const uint64_t *Sel,
                                size_t SelWords, size_t NumWords) {
  // Narrow accumulators (≤ 4 words — contexts up to 256 attributes or
  // objects) stay entirely in registers: fold each selected row directly,
  // with no batching, no pointer gathering, and no indirect calls. This
  // is the regime of the paper's workloads and of the closure-throughput
  // targets, where the batching machinery would cost more than the ANDs.
  if (NumWords <= 4) {
    uint64_t Acc[4] = {0, 0, 0, 0};
    for (size_t I = 0; I < NumWords; ++I)
      Acc[I] = Dst[I];
    uint64_t TotalRows = 0;
    for (size_t W = 0; W < SelWords; ++W) {
      uint64_t Bits = Sel[W];
      const uint64_t *Base = Arena + W * 64 * Stride;
      while (Bits != 0) {
        const uint64_t *Row =
            Base + static_cast<size_t>(std::countr_zero(Bits)) * Stride;
        Bits &= Bits - 1;
        ++TotalRows;
        for (size_t I = 0; I < NumWords; ++I)
          Acc[I] &= Row[I];
      }
    }
    for (size_t I = 0; I < NumWords; ++I)
      Dst[I] = Acc[I];
    FusedAndCalls.add();
    FusedAndWords.add(TotalRows * NumWords);
    return;
  }

  // Gather selected rows in batches so AndManyInto touches the Dst block
  // once per batch. 8 operands keeps the working set (8 rows + Dst) well
  // inside L1 for block-sized chunks and the pointer array in registers.
  constexpr size_t BatchMax = 8;
  const uint64_t *Batch[BatchMax];
  size_t K = 0;
  uint64_t TotalRows = 0;
  const KernelOps &O = ops();
  for (size_t W = 0; W < SelWords; ++W) {
    uint64_t Bits = Sel[W];
    while (Bits != 0) {
      size_t P = W * 64 + static_cast<size_t>(std::countr_zero(Bits));
      Bits &= Bits - 1;
      Batch[K++] = Arena + P * Stride;
      ++TotalRows;
      if (K == BatchMax) {
        O.AndManyInto(Dst, Batch, K, NumWords);
        K = 0;
      }
    }
  }
  if (K != 0)
    O.AndManyInto(Dst, Batch, K, NumWords);
  FusedAndCalls.add();
  FusedAndWords.add(TotalRows * NumWords);
}
