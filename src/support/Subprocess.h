//===- support/Subprocess.h - Crash-isolated worker processes ---*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fork-based worker processes plus the length-prefixed, CRC-framed wire
/// protocol the shard supervisor speaks to them. A Subprocess is a child
/// forked from the current process connected to it by one AF_UNIX
/// socketpair; the child runs a caller-provided function over its end of
/// the socket and _exit()s with its return value, never unwinding into
/// the parent's destructors or atexit handlers.
///
/// Wire frames reuse AtomicFile's record layout exactly:
///
///   [u32 length][u32 crc32(payload)][payload]     (both fields LE)
///
/// so a half-written reply from a crashed worker is detected the same way
/// a torn journal tail is: the length or checksum does not hold, and the
/// frame is rejected rather than trusted. All socket writes use
/// MSG_NOSIGNAL, so a dead peer produces an EPIPE Status, never a
/// process-killing SIGPIPE, even in binaries that have not installed a
/// SIGPIPE disposition.
///
/// Every spawned child is tracked in a small async-signal-safe registry;
/// killActiveFromSignalHandler() lets a SIGINT/SIGTERM handler take the
/// worker group down with the supervisor instead of leaking orphans.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_SUBPROCESS_H
#define CABLE_SUPPORT_SUBPROCESS_H

#include "support/Status.h"

#include <functional>
#include <string>
#include <string_view>
#include <sys/types.h>
#include <vector>

namespace cable {

// -- Wire framing ----------------------------------------------------------

/// Writes \p Data to the socket \p Fd with MSG_NOSIGNAL, retrying on EINTR
/// and short writes. The building block of sendFrame, exposed so callers
/// that must fault *inside* a frame (the shard-mid-frame failpoint) can
/// write a frame in pieces.
Status sendBytes(int Fd, const char *Data, size_t Len);

/// Writes one `[len][crc][payload]` frame to \p Fd, retrying on EINTR and
/// short writes. Fails with an io-error Status on EPIPE (dead peer) or any
/// other socket error; never raises SIGPIPE.
Status sendFrame(int Fd, std::string_view Payload);

/// Reads one frame from \p Fd. \p TimeoutMs < 0 blocks indefinitely;
/// otherwise the whole frame (header and payload) must arrive within the
/// budget. Failure modes, all io-error/resource-exhausted Statuses rather
/// than trust-and-continue:
///
///  - EOF before any byte: "peer closed" (clean shutdown or a dead child);
///  - EOF mid-frame: a torn frame — the residue of a crash mid-write;
///  - CRC or length check fails: a corrupt frame;
///  - the timeout elapses: resource-exhausted, the caller's cue to treat
///    the peer as wedged.
StatusOr<std::string> recvFrame(int Fd, int TimeoutMs = -1);

/// Frame-length ceiling (1 GiB): a corrupt header cannot make recvFrame
/// try to allocate petabytes.
inline constexpr uint32_t MaxFrameBytes = 1u << 30;

// -- Worker processes ------------------------------------------------------

/// One forked worker connected by a socketpair. Move-only; the destructor
/// SIGKILLs and reaps a still-running child so a supervisor can never leak
/// workers on an error path.
class Subprocess {
public:
  /// What the child runs over its socket end; the return value becomes the
  /// child's exit code. Runs after the child has closed every fd listed in
  /// spawn()'s \p CloseInChild. Must not return control to the caller's
  /// stack — spawn() _exit()s with the returned code.
  using ChildMain = std::function<int(int Fd)>;

  /// How a reaped child terminated.
  struct ExitStatus {
    bool Signaled = false; ///< Killed by a signal (SIGKILL, SIGSEGV, ...).
    int Code = 0;          ///< Exit code, or the signal number when Signaled.
  };

  /// True when this platform can fork workers at all. The supervisor's
  /// degrade-to-in-process gate.
  static bool forkSupported();

  /// Forks a child running \p Main over one end of a fresh socketpair.
  /// \p CloseInChild lists parent-side fds of *other* workers the child
  /// must not inherit (so a sibling's EOF is observed promptly). Fails
  /// with a resource-exhausted/io-error Status when the socketpair or the
  /// fork itself fails; the `shard-pre-fork` lifecycle failpoint fires in
  /// the child before \p Main runs.
  static StatusOr<Subprocess> spawn(const ChildMain &Main,
                                    const std::vector<int> &CloseInChild = {});

  Subprocess() = default;
  Subprocess(Subprocess &&Other) noexcept;
  Subprocess &operator=(Subprocess &&Other) noexcept;
  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;
  ~Subprocess();

  /// Parent's end of the socketpair, or -1 after close()/move.
  int fd() const { return Fd; }
  pid_t pid() const { return Pid; }

  /// True while the child has not been reaped.
  bool running() const { return Pid > 0; }

  /// SIGKILLs the child (idempotent; no-op once reaped).
  void kill();

  /// Closes the parent's socket end (the child sees EOF on its next read).
  void closeFd();

  /// Blocks until the child exits, reaps it, and reports how it died.
  /// After wait() the Subprocess is inert.
  ExitStatus wait();

  /// Non-blocking reap: returns the exit status if the child has already
  /// exited, std::nullopt while it is still running.
  std::optional<ExitStatus> tryWait();

  /// SIGKILLs every currently-live child spawned through this class. Only
  /// async-signal-safe calls; intended for SIGINT/SIGTERM handlers so the
  /// worker group dies with the supervisor.
  static void killActiveFromSignalHandler();

private:
  int Fd = -1;
  pid_t Pid = -1;
};

} // namespace cable

#endif // CABLE_SUPPORT_SUBPROCESS_H
