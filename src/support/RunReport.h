//===- support/RunReport.h - Self-describing run artifacts ------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writers for the two self-describing JSON artifacts a tool run can
/// leave behind (docs/FORMATS.md, docs/OBSERVABILITY.md):
///
///  - `--metrics-out FILE`: schema "cable-metrics/1" — the build stamp
///    plus the full Metrics snapshot.
///  - `--run-report FILE`: schema "cable-run-report/1" — tool name,
///    version, git SHA, the exact argv the tool was invoked with,
///    truncation/interruption flags, and the metrics snapshot, so a run
///    is reproducible and auditable from the one file.
///
/// Both are written atomically (support/AtomicFile.h).
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_SUPPORT_RUNREPORT_H
#define CABLE_SUPPORT_RUNREPORT_H

#include "support/Status.h"

#include <string>
#include <string_view>
#include <vector>

namespace cable {

/// Renders the "cable-metrics/1" document (build stamp + metrics
/// snapshot) as a string.
std::string renderMetricsJson(std::string_view Tool);

/// renderMetricsJson written atomically to \p Path.
Status writeMetricsJson(const std::string &Path, std::string_view Tool);

/// Everything a run report carries besides the metrics snapshot.
struct RunReportInfo {
  std::string Tool;
  std::vector<std::string> Args;  ///< argv[1..] as invoked.
  bool Truncated = false;         ///< Budget tripped / output clipped.
  bool CleanExit = true;          ///< False when exiting on error.
  int ExitCode = 0;
};

/// Renders the "cable-run-report/1" document as a string.
std::string renderRunReport(const RunReportInfo &Info);

/// renderRunReport written atomically to \p Path.
Status writeRunReport(const std::string &Path, const RunReportInfo &Info);

/// Registers a worker flight-recorder dump (a validated
/// `cable-crashdump/1` document) collected by the shard supervisor; the
/// run report attaches every registered dump as `sharded.crash_dumps`.
/// \p Document must be well-formed JSON — it is embedded verbatim.
void addCollectedCrashDump(std::string Document);

/// The dumps registered so far, in collection order (tests).
const std::vector<std::string> &collectedCrashDumps();

} // namespace cable

#endif // CABLE_SUPPORT_RUNREPORT_H
