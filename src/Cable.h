//===- Cable.h - Umbrella header ---------------------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella: pulls in the whole public API. Applications that
/// care about compile time should include the specific headers instead;
/// this exists for quick experiments and example code.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CABLE_H
#define CABLE_CABLE_H

#include "cable/Advisor.h"
#include "cable/Session.h"
#include "cable/Strategies.h"
#include "cable/WellFormed.h"
#include "concepts/Context.h"
#include "concepts/GodinBuilder.h"
#include "concepts/Lattice.h"
#include "concepts/LindigBuilder.h"
#include "concepts/NextClosureBuilder.h"
#include "fa/Automaton.h"
#include "fa/Dfa.h"
#include "fa/Parse.h"
#include "fa/Regex.h"
#include "fa/Templates.h"
#include "learner/Coring.h"
#include "learner/KTails.h"
#include "learner/SkStrings.h"
#include "miner/Miner.h"
#include "trace/TraceSet.h"
#include "verifier/Verifier.h"

#endif // CABLE_CABLE_H
