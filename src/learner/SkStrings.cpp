//===- learner/SkStrings.cpp - The sk-strings FA learner ------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "learner/SkStrings.h"

#include "learner/Quotient.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <set>
#include <vector>

using namespace cable;

namespace {

/// Sentinel symbol marking end-of-trace inside a k-string.
constexpr uint32_t EndSymbol = ~uint32_t(0);

/// A k-string: a symbol sequence (possibly ending in EndSymbol) with its
/// probability from some state.
using KString = std::vector<uint32_t>;
using KStringDist = std::map<KString, double>;

/// Union-find over PTA states.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }
  size_t find(size_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void merge(size_t A, size_t B) { Parent[find(B)] = find(A); }

private:
  std::vector<size_t> Parent;
};

/// The quotient of a PTA under a union-find partition, with aggregated
/// counts (thin wrapper over quotientAutomaton).
CountedAutomaton quotient(const CountedAutomaton &PTA, UnionFind &Classes,
                          std::vector<StateId> &RepOf) {
  std::vector<uint32_t> ClassKeyOf(PTA.numStates());
  for (size_t S = 0; S < PTA.numStates(); ++S)
    ClassKeyOf[S] = static_cast<uint32_t>(Classes.find(S));
  return quotientAutomaton(PTA, ClassKeyOf, &RepOf);
}

/// Enumerates the k-string distribution of \p State in \p Q: strings of
/// exactly K symbols, or fewer followed by EndSymbol, weighted by path
/// probability.
KStringDist kStrings(const CountedAutomaton &Q, StateId State, unsigned K,
                     size_t MaxStrings) {
  KStringDist Out;
  struct Item {
    StateId S;
    KString Prefix;
    double P;
  };
  std::vector<Item> Worklist{{State, {}, 1.0}};
  while (!Worklist.empty()) {
    Item It = std::move(Worklist.back());
    Worklist.pop_back();
    if (Out.size() > MaxStrings)
      break;
    uint64_t Total = Q.totalCount(It.S);
    if (Total == 0) {
      // No data at this state (possible mid-merge); treat as terminating.
      KString Str = It.Prefix;
      Str.push_back(EndSymbol);
      Out[Str] += It.P;
      continue;
    }
    if (uint64_t F = Q.finalCount(It.S)) {
      KString Str = It.Prefix;
      Str.push_back(EndSymbol);
      Out[Str] += It.P * static_cast<double>(F) / static_cast<double>(Total);
    }
    if (It.Prefix.size() == K)
      continue;
    for (size_t EI : Q.outgoing(It.S)) {
      const CountedAutomaton::Edge &E = Q.edge(EI);
      KString Str = It.Prefix;
      Str.push_back(E.Symbol);
      double P =
          It.P * static_cast<double>(E.Count) / static_cast<double>(Total);
      if (Str.size() == K) {
        Out[Str] += P;
      } else {
        Worklist.push_back(Item{E.To, std::move(Str), P});
      }
    }
  }
  return Out;
}

/// The top-s fraction of \p Dist by probability mass: the smallest prefix
/// of the descending-probability list whose mass reaches S * total.
std::set<KString> topStrings(const KStringDist &Dist, double S) {
  std::vector<std::pair<double, const KString *>> Sorted;
  double Total = 0;
  for (const auto &[Str, P] : Dist) {
    Sorted.emplace_back(P, &Str);
    Total += P;
  }
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first > B.first;
              return *A.second < *B.second; // Deterministic tie-break.
            });
  std::set<KString> Out;
  double Mass = 0;
  for (const auto &[P, Str] : Sorted) {
    if (Mass >= S * Total && !Out.empty())
      break;
    Out.insert(*Str);
    Mass += P;
  }
  return Out;
}

/// True if every string of \p Top appears in \p Dist.
bool coveredBy(const std::set<KString> &Top, const KStringDist &Dist) {
  for (const KString &Str : Top)
    if (!Dist.count(Str))
      return false;
  return true;
}

bool skEquivalent(const CountedAutomaton &Q, StateId A, StateId B,
                  const SkStringsOptions &Options) {
  KStringDist DA = kStrings(Q, A, Options.K, Options.MaxStringsPerState);
  KStringDist DB = kStrings(Q, B, Options.K, Options.MaxStringsPerState);
  std::set<KString> TA = topStrings(DA, Options.S);
  std::set<KString> TB = topStrings(DB, Options.S);
  switch (Options.Agreement) {
  case SkStringsOptions::Variant::AND:
    return coveredBy(TA, DB) && coveredBy(TB, DA);
  case SkStringsOptions::Variant::OR:
    return coveredBy(TA, DB) || coveredBy(TB, DA);
  case SkStringsOptions::Variant::LAX:
    for (const KString &Str : TA)
      if (TB.count(Str))
        return true;
    return false;
  }
  return false;
}

} // namespace

CountedAutomaton cable::learnSkStrings(const std::vector<Trace> &Traces,
                                       const SkStringsOptions &Options) {
  assert(Options.S > 0 && Options.S <= 1 && "s must be in (0, 1]");
  CountedAutomaton PTA = CountedAutomaton::buildPTA(Traces);
  UnionFind Classes(PTA.numStates());

  // Red-blue merging over PTA classes. Reds are established states; blues
  // are non-red classes reachable from a red in one step. Merge the first
  // blue into the first sk-equivalent red, else promote it.
  std::vector<size_t> Reds{Classes.find(0)};
  for (;;) {
    std::vector<StateId> RepOf;
    CountedAutomaton Q = quotient(PTA, Classes, RepOf);

    // Quotient ids of red roots.
    std::vector<StateId> RedIds;
    std::vector<bool> IsRed(Q.numStates(), false);
    for (size_t R : Reds) {
      StateId Id = RepOf[R];
      if (!IsRed[Id]) {
        IsRed[Id] = true;
        RedIds.push_back(Id);
      }
    }

    // First blue: smallest quotient id reachable from a red, not red.
    StateId Blue = static_cast<StateId>(-1);
    for (StateId R : RedIds)
      for (size_t EI : Q.outgoing(R)) {
        StateId To = Q.edge(EI).To;
        if (!IsRed[To] && (Blue == static_cast<StateId>(-1) || To < Blue))
          Blue = To;
      }
    if (Blue == static_cast<StateId>(-1))
      break; // Everything red: done.

    // A PTA root for the blue class (smallest member).
    size_t BlueRoot = static_cast<size_t>(-1);
    for (size_t S = 0; S < PTA.numStates(); ++S)
      if (RepOf[S] == Blue) {
        BlueRoot = S;
        break;
      }
    assert(BlueRoot != static_cast<size_t>(-1) && "blue class has no member");

    bool Merged = false;
    for (StateId R : RedIds) {
      if (skEquivalent(Q, R, Blue, Options)) {
        // Merge blue's class into the red's class.
        size_t RedRoot = static_cast<size_t>(-1);
        for (size_t S = 0; S < PTA.numStates(); ++S)
          if (RepOf[S] == R) {
            RedRoot = S;
            break;
          }
        Classes.merge(RedRoot, BlueRoot);
        Merged = true;
        break;
      }
    }
    if (!Merged)
      Reds.push_back(Classes.find(BlueRoot));
  }

  std::vector<StateId> RepOf;
  return quotient(PTA, Classes, RepOf);
}

Automaton cable::learnSkStringsFA(const std::vector<Trace> &Traces,
                                  const EventTable &Table,
                                  const SkStringsOptions &Options) {
  return learnSkStrings(Traces, Options).toAutomaton(Table);
}
