//===- learner/KTails.cpp - The k-tails FA learner --------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "learner/KTails.h"

#include "learner/Quotient.h"

#include <map>
#include <set>
#include <vector>

using namespace cable;

namespace {

/// The k-tail set of a PTA state: accepted suffixes of length <= K. The
/// PTA is acyclic and deterministic, so plain recursion suffices.
std::set<std::vector<EventId>> tails(const CountedAutomaton &PTA,
                                     StateId State, unsigned K) {
  std::set<std::vector<EventId>> Out;
  if (PTA.isFinal(State))
    Out.insert(std::vector<EventId>()); // The empty tail: acceptance here.
  if (K == 0)
    return Out;
  for (size_t EI : PTA.outgoing(State)) {
    const CountedAutomaton::Edge &E = PTA.edge(EI);
    for (const std::vector<EventId> &Suffix : tails(PTA, E.To, K - 1)) {
      std::vector<EventId> Tail;
      Tail.reserve(Suffix.size() + 1);
      Tail.push_back(E.Symbol);
      Tail.insert(Tail.end(), Suffix.begin(), Suffix.end());
      Out.insert(std::move(Tail));
    }
  }
  return Out;
}

} // namespace

CountedAutomaton cable::learnKTails(const std::vector<Trace> &Traces,
                                    unsigned K) {
  CountedAutomaton PTA = CountedAutomaton::buildPTA(Traces);

  // Partition states by their k-tail sets.
  std::map<std::set<std::vector<EventId>>, uint32_t> KeyOfTails;
  std::vector<uint32_t> ClassKeyOf(PTA.numStates());
  for (size_t S = 0; S < PTA.numStates(); ++S) {
    std::set<std::vector<EventId>> T = tails(PTA, static_cast<StateId>(S), K);
    auto [It, Inserted] =
        KeyOfTails.emplace(std::move(T),
                           static_cast<uint32_t>(KeyOfTails.size()));
    (void)Inserted;
    ClassKeyOf[S] = It->second;
  }
  return quotientAutomaton(PTA, ClassKeyOf);
}

Automaton cable::learnKTailsFA(const std::vector<Trace> &Traces,
                               const EventTable &Table, unsigned K) {
  return learnKTails(Traces, K).toAutomaton(Table);
}
