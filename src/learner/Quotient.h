//===- learner/Quotient.h - State-merging quotients -------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quotient operation every state-merging FA learner is built on:
/// collapse states of a counted automaton into classes, aggregating edge
/// and final counts. Used by sk-strings (greedy red-blue merging) and
/// k-tails (one-shot partition by tail sets).
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_LEARNER_QUOTIENT_H
#define CABLE_LEARNER_QUOTIENT_H

#include "learner/CountedAutomaton.h"

#include <vector>

namespace cable {

/// Merges the states of \p CA according to \p ClassKeyOf (states with
/// equal keys merge; keys are arbitrary). The class of state 0 becomes
/// quotient state 0 (the start). If \p QuotientIdOf is non-null it
/// receives each original state's quotient id.
CountedAutomaton quotientAutomaton(const CountedAutomaton &CA,
                                   const std::vector<uint32_t> &ClassKeyOf,
                                   std::vector<StateId> *QuotientIdOf
                                   = nullptr);

} // namespace cable

#endif // CABLE_LEARNER_QUOTIENT_H
