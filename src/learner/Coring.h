//===- learner/Coring.h - Frequency-based coring ----------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coring — the naive specification-debugging mechanism of the original
/// Strauss work, which this paper supersedes (§6: "dropping low frequency
/// transitions"). Kept here as the ablation baseline: an edge whose count
/// is a small fraction of its source state's traffic is presumed to come
/// from erroneous traces and is dropped.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_LEARNER_CORING_H
#define CABLE_LEARNER_CORING_H

#include "learner/CountedAutomaton.h"

namespace cable {

/// Drops every edge with Count < MinFraction * totalCount(From) and every
/// final marking with the analogous property, then trims unreachable and
/// dead states. \p MinFraction in [0, 1].
Automaton coreAutomaton(const CountedAutomaton &CA, const EventTable &Table,
                        double MinFraction);

} // namespace cable

#endif // CABLE_LEARNER_CORING_H
