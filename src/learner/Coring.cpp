//===- learner/Coring.cpp - Frequency-based coring -------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "learner/Coring.h"

#include <cassert>

using namespace cable;

Automaton cable::coreAutomaton(const CountedAutomaton &CA,
                               const EventTable &Table, double MinFraction) {
  assert(MinFraction >= 0 && MinFraction <= 1 && "fraction out of range");
  Automaton Out;
  for (size_t S = 0; S < CA.numStates(); ++S) {
    StateId Id = Out.addState();
    double Total = static_cast<double>(CA.totalCount(static_cast<StateId>(S)));
    bool KeepFinal =
        CA.isFinal(static_cast<StateId>(S)) &&
        static_cast<double>(CA.finalCount(static_cast<StateId>(S))) >=
            MinFraction * Total;
    Out.setAccepting(Id, KeepFinal);
  }
  if (CA.numStates() > 0)
    Out.setStart(0);
  for (const CountedAutomaton::Edge &E : CA.edges()) {
    double Total = static_cast<double>(CA.totalCount(E.From));
    if (static_cast<double>(E.Count) >= MinFraction * Total)
      Out.addTransition(E.From, E.To,
                        TransitionLabel::exactEvent(Table.event(E.Symbol)));
  }
  return Out.trimmed();
}
