//===- learner/CountedAutomaton.h - Stochastic automata ---------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A frequency-annotated automaton — the representation FA learners work
/// on. Transitions carry concrete events (no patterns) and visit counts;
/// states carry end-of-trace counts. The prefix-tree acceptor (PTA) built
/// from a training set is the starting point of both the sk-strings
/// learner and Strauss's coring baseline.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_LEARNER_COUNTEDAUTOMATON_H
#define CABLE_LEARNER_COUNTEDAUTOMATON_H

#include "fa/Automaton.h"
#include "trace/Trace.h"

#include <vector>

namespace cable {

/// An automaton whose transitions are labeled with concrete events and
/// annotated with training frequencies. Single start state 0 by
/// convention.
class CountedAutomaton {
public:
  struct Edge {
    StateId From = 0;
    StateId To = 0;
    EventId Symbol = 0;
    uint64_t Count = 0;
  };

  /// Adds a state; returns its id. State 0 is the start state.
  StateId addState();

  size_t numStates() const { return FinalCounts.size(); }
  size_t numEdges() const { return Edges.size(); }

  /// Adds \p Count occurrences of an edge (merging with an identical
  /// existing edge).
  void addEdge(StateId From, StateId To, EventId Symbol, uint64_t Count = 1);

  /// Adds \p Count trace-endings at \p S.
  void addFinal(StateId S, uint64_t Count = 1);

  uint64_t finalCount(StateId S) const { return FinalCounts[S]; }
  bool isFinal(StateId S) const { return FinalCounts[S] > 0; }

  const std::vector<Edge> &edges() const { return Edges; }
  const std::vector<size_t> &outgoing(StateId S) const { return Outgoing[S]; }
  const Edge &edge(size_t I) const { return Edges[I]; }

  /// Total outgoing transition count plus final count — the denominator of
  /// every probability at \p S.
  uint64_t totalCount(StateId S) const;

  /// Builds the prefix-tree acceptor of \p Traces (identical traces merge
  /// and increment counts along their shared path).
  static CountedAutomaton buildPTA(const std::vector<Trace> &Traces);

  /// Converts to a plain Automaton with Exact labels (counts dropped).
  Automaton toAutomaton(const EventTable &Table) const;

private:
  std::vector<uint64_t> FinalCounts;
  std::vector<Edge> Edges;
  std::vector<std::vector<size_t>> Outgoing;
};

} // namespace cable

#endif // CABLE_LEARNER_COUNTEDAUTOMATON_H
