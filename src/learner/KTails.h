//===- learner/KTails.h - The k-tails FA learner ----------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic k-tails inference method (Biermann & Feldman), one of the
/// alternative learners the paper's §6 points to via Murphy's survey. Two
/// PTA states are k-tail equivalent iff they admit exactly the same
/// accepted suffixes of length at most k; the learned FA is the quotient
/// of the PTA by that equivalence.
///
/// Compared with sk-strings, k-tails is deterministic-in-policy (no
/// probability threshold): it merges more aggressively for small k and is
/// exact (accepts precisely the training set) once k reaches the longest
/// trace length.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_LEARNER_KTAILS_H
#define CABLE_LEARNER_KTAILS_H

#include "learner/CountedAutomaton.h"

namespace cable {

/// Runs k-tails over \p Traces: builds the PTA and merges k-tail
/// equivalent states.
CountedAutomaton learnKTails(const std::vector<Trace> &Traces, unsigned K);

/// Convenience: learns and converts to a plain Automaton.
Automaton learnKTailsFA(const std::vector<Trace> &Traces,
                        const EventTable &Table, unsigned K);

} // namespace cable

#endif // CABLE_LEARNER_KTAILS_H
