//===- learner/CountedAutomaton.cpp - Stochastic automata -----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "learner/CountedAutomaton.h"

#include <cassert>

using namespace cable;

StateId CountedAutomaton::addState() {
  StateId Id = static_cast<StateId>(FinalCounts.size());
  FinalCounts.push_back(0);
  Outgoing.emplace_back();
  return Id;
}

void CountedAutomaton::addEdge(StateId From, StateId To, EventId Symbol,
                               uint64_t Count) {
  assert(From < numStates() && To < numStates() && "bad state");
  for (size_t EI : Outgoing[From]) {
    Edge &E = Edges[EI];
    if (E.To == To && E.Symbol == Symbol) {
      E.Count += Count;
      return;
    }
  }
  Outgoing[From].push_back(Edges.size());
  Edges.push_back(Edge{From, To, Symbol, Count});
}

void CountedAutomaton::addFinal(StateId S, uint64_t Count) {
  assert(S < numStates() && "bad state");
  FinalCounts[S] += Count;
}

uint64_t CountedAutomaton::totalCount(StateId S) const {
  uint64_t Total = FinalCounts[S];
  for (size_t EI : Outgoing[S])
    Total += Edges[EI].Count;
  return Total;
}

CountedAutomaton
CountedAutomaton::buildPTA(const std::vector<Trace> &Traces) {
  CountedAutomaton PTA;
  PTA.addState(); // Root/start.
  for (const Trace &T : Traces) {
    StateId Cur = 0;
    for (EventId E : T.events()) {
      // Find the unique child on E (the PTA is deterministic).
      StateId Next = static_cast<StateId>(-1);
      for (size_t EI : PTA.Outgoing[Cur])
        if (PTA.Edges[EI].Symbol == E) {
          Next = PTA.Edges[EI].To;
          break;
        }
      if (Next == static_cast<StateId>(-1))
        Next = PTA.addState();
      PTA.addEdge(Cur, Next, E);
      Cur = Next;
    }
    PTA.addFinal(Cur);
  }
  return PTA;
}

Automaton CountedAutomaton::toAutomaton(const EventTable &Table) const {
  Automaton Out;
  for (size_t S = 0; S < numStates(); ++S) {
    StateId Id = Out.addState();
    Out.setAccepting(Id, isFinal(static_cast<StateId>(S)));
  }
  if (numStates() > 0)
    Out.setStart(0);
  for (const Edge &E : Edges)
    Out.addTransition(E.From, E.To,
                      TransitionLabel::exactEvent(Table.event(E.Symbol)));
  return Out;
}
