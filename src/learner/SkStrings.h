//===- learner/SkStrings.h - The sk-strings FA learner ----------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sk-strings inference method of Raman and Patrick, which the paper
/// uses both for Cable's "Show FA" concept summaries and as the Strauss
/// back end (§4.1, §6).
///
/// The learner builds the prefix-tree acceptor of the training traces and
/// then greedily merges states that are *sk-equivalent*: their most
/// probable strings of length at most k agree. "Most probable" means the
/// smallest prefix of the descending-probability string list whose mass
/// reaches the fraction s. Three published agreement variants:
///
///   AND: every top string of each state is a k-string of the other;
///   OR:  one state's top strings are all k-strings of the other (either
///        direction suffices);
///   LAX: the two top sets intersect.
///
/// Merging is organized red-blue (merge a frontier state into some
/// established state or promote it), which keeps the number of equivalence
/// tests near-linear in PTA size. The result is in general a
/// nondeterministic FA that accepts every training trace and generalizes
/// beyond them.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_LEARNER_SKSTRINGS_H
#define CABLE_LEARNER_SKSTRINGS_H

#include "learner/CountedAutomaton.h"

namespace cable {

/// Tuning knobs for the sk-strings learner.
struct SkStringsOptions {
  /// Agreement test between two states' k-string sets.
  enum class Variant { AND, OR, LAX };

  /// String length bound k.
  unsigned K = 2;

  /// Probability-mass fraction s in (0, 1].
  double S = 0.5;

  Variant Agreement = Variant::AND;

  /// Safety cap on distinct k-strings enumerated per state.
  size_t MaxStringsPerState = 4096;
};

/// Runs sk-strings on \p Traces; returns the merged counted automaton.
CountedAutomaton learnSkStrings(const std::vector<Trace> &Traces,
                                const SkStringsOptions &Options = {});

/// Convenience: learns and converts to a plain Automaton.
Automaton learnSkStringsFA(const std::vector<Trace> &Traces,
                           const EventTable &Table,
                           const SkStringsOptions &Options = {});

} // namespace cable

#endif // CABLE_LEARNER_SKSTRINGS_H
