//===- learner/Quotient.cpp - State-merging quotients -----------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "learner/Quotient.h"

#include <cassert>
#include <unordered_map>

using namespace cable;

CountedAutomaton
cable::quotientAutomaton(const CountedAutomaton &CA,
                         const std::vector<uint32_t> &ClassKeyOf,
                         std::vector<StateId> *QuotientIdOf) {
  assert(ClassKeyOf.size() == CA.numStates() && "one class key per state");
  CountedAutomaton Q;
  std::unordered_map<uint32_t, StateId> IdOfKey;
  auto GetId = [&](uint32_t Key) {
    auto It = IdOfKey.find(Key);
    if (It != IdOfKey.end())
      return It->second;
    StateId Id = Q.addState();
    IdOfKey.emplace(Key, Id);
    return Id;
  };

  std::vector<StateId> Map(CA.numStates());
  if (CA.numStates() > 0)
    GetId(ClassKeyOf[0]); // Start class becomes quotient state 0.
  for (size_t S = 0; S < CA.numStates(); ++S)
    Map[S] = GetId(ClassKeyOf[S]);
  for (size_t S = 0; S < CA.numStates(); ++S)
    if (uint64_t F = CA.finalCount(static_cast<StateId>(S)))
      Q.addFinal(Map[S], F);
  for (const CountedAutomaton::Edge &E : CA.edges())
    Q.addEdge(Map[E.From], Map[E.To], E.Symbol, E.Count);
  if (QuotientIdOf)
    *QuotientIdOf = std::move(Map);
  return Q;
}
