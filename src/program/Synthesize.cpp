//===- program/Synthesize.cpp - Protocol-exercising programs ---------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "program/Synthesize.h"

#include <algorithm>
#include <cassert>

using namespace cable;

namespace {

/// Compiles one scenario shape into site statements over locals
/// [LocalBase, LocalBase + slots). Optional steps become per-run guarded
/// calls in an order fixed at synthesis time; Repeat steps become loops
/// whose body picks between the step's events at run time.
std::vector<Stmt> compileShape(const ScenarioShape &Shape, int LocalBase,
                               RNG &Rand) {
  std::vector<Stmt> Out;
  auto CallOf = [&](const ProtoEvent &E) {
    std::vector<int> Args;
    Args.reserve(E.Objs.size());
    for (int Slot : E.Objs)
      Args.push_back(LocalBase + Slot);
    return Stmt::call(E.Name, std::move(Args));
  };

  for (const ShapeStep &Step : Shape.Steps) {
    switch (Step.K) {
    case ShapeStep::Kind::Required:
      Out.push_back(CallOf(Step.Events[0]));
      break;
    case ShapeStep::Kind::Optional: {
      std::vector<size_t> Order(Step.Events.size());
      for (size_t I = 0; I < Order.size(); ++I)
        Order[I] = I;
      Rand.shuffle(Order);
      for (size_t I : Order)
        Out.push_back(
            Stmt::iff(Step.IncludeProb, {CallOf(Step.Events[I])}));
      break;
    }
    case ShapeStep::Kind::OneOf: {
      // The call site is fixed at synthesis time: a given program calls
      // one specific function here.
      std::vector<double> W = Step.Weights;
      if (W.empty())
        W.assign(Step.Events.size(), 1.0);
      Out.push_back(CallOf(Step.Events[Rand.pickWeighted(W)]));
      break;
    }
    case ShapeStep::Kind::Repeat: {
      std::vector<Stmt> Body;
      if (Step.Events.size() == 1) {
        Body.push_back(CallOf(Step.Events[0]));
      } else {
        // Alternate between two of the step's events per iteration.
        size_t A = Rand.nextIndex(Step.Events.size());
        size_t B = Rand.nextIndex(Step.Events.size());
        Body.push_back(Stmt::iff(0.5, {CallOf(Step.Events[A])},
                                 {CallOf(Step.Events[B])}));
      }
      Out.push_back(Stmt::loop(Step.MinReps, Step.MaxReps, std::move(Body)));
      break;
    }
    }
  }
  return Out;
}

/// Index of the last top-level Call named \p Name, or npos.
size_t lastCallNamed(const std::vector<Stmt> &Site, const std::string &Name) {
  for (size_t I = Site.size(); I > 0; --I)
    if (Site[I - 1].K == Stmt::Kind::Call && Site[I - 1].Name == Name)
      return I - 1;
  return static_cast<size_t>(-1);
}

/// Index of the first top-level Call, or npos.
size_t firstCall(const std::vector<Stmt> &Site) {
  for (size_t I = 0; I < Site.size(); ++I)
    if (Site[I].K == Stmt::Kind::Call)
      return I;
  return static_cast<size_t>(-1);
}

/// Applies \p Mode to the site's statements — the static analogue of
/// WorkloadGenerator::applyError. Mutations that find no target leave the
/// site unchanged (it stays correct).
void mutateSite(std::vector<Stmt> &Site, const ErrorMode &Mode) {
  switch (Mode.K) {
  case ErrorMode::Kind::DropNamed: {
    size_t I = lastCallNamed(Site, Mode.A);
    if (I != static_cast<size_t>(-1))
      Site.erase(Site.begin() + static_cast<ptrdiff_t>(I));
    break;
  }
  case ErrorMode::Kind::DropFirst: {
    size_t I = firstCall(Site);
    if (I != static_cast<size_t>(-1))
      Site.erase(Site.begin() + static_cast<ptrdiff_t>(I));
    break;
  }
  case ErrorMode::Kind::DuplicateNamed: {
    size_t I = lastCallNamed(Site, Mode.A);
    if (I != static_cast<size_t>(-1))
      Site.push_back(Site[I]);
    break;
  }
  case ErrorMode::Kind::ReplaceNamed: {
    size_t I = lastCallNamed(Site, Mode.A);
    if (I != static_cast<size_t>(-1))
      Site[I].Name = Mode.B;
    break;
  }
  case ErrorMode::Kind::AppendNamed: {
    size_t I = lastCallNamed(Site, Mode.A);
    if (I != static_cast<size_t>(-1)) {
      Site.push_back(Site[I]);
      break;
    }
    size_t F = firstCall(Site);
    if (F != static_cast<size_t>(-1)) {
      Stmt Call = Stmt::call(Mode.A, Site[F].Args);
      Site.push_back(std::move(Call));
    }
    break;
  }
  case ErrorMode::Kind::TruncateTail: {
    // Drop the last top-level call.
    for (size_t I = Site.size(); I > 0; --I)
      if (Site[I - 1].K == Stmt::Kind::Call) {
        Site.erase(Site.begin() + static_cast<ptrdiff_t>(I - 1));
        break;
      }
    break;
  }
  }
}

} // namespace

Program cable::synthesizeProgram(const ProtocolModel &Model, RNG &Rand,
                                 std::string Name, size_t NumSites,
                                 size_t NumBuggy) {
  assert(NumBuggy <= NumSites && "more buggy sites than sites");
  Program P;
  P.Name = std::move(Name);

  // Which sites are buggy is a property of the *program*.
  std::vector<int> Buggy(NumSites, 0);
  for (size_t I = 0; I < NumBuggy; ++I)
    Buggy[I] = 1;
  Rand.shuffle(Buggy);

  int LocalBase = 0;
  for (size_t Site = 0; Site < NumSites; ++Site) {
    // Pick a shape.
    std::vector<double> Weights;
    for (const auto &[W, Shape] : Model.Shapes)
      Weights.push_back(W);
    const ScenarioShape &Shape =
        Model.Shapes[Rand.pickWeighted(Weights)].second;

    // Count the slots it uses.
    int MaxSlot = 0;
    for (const ShapeStep &Step : Shape.Steps)
      for (const ProtoEvent &E : Step.Events)
        for (int Slot : E.Objs)
          MaxSlot = std::max(MaxSlot, Slot);
    int NumSlots = MaxSlot + 1;

    // Allocate the site's objects, then the site body.
    for (int Slot = 0; Slot < NumSlots; ++Slot)
      P.Body.push_back(Stmt::alloc(LocalBase + Slot));
    std::vector<Stmt> Stmts = compileShape(Shape, LocalBase, Rand);
    if (Buggy[Site] != 0 && !Model.Errors.empty()) {
      std::vector<double> EW;
      for (const auto &[W, Mode] : Model.Errors)
        EW.push_back(W);
      mutateSite(Stmts, Model.Errors[Rand.pickWeighted(EW)].second);
    }
    for (Stmt &S : Stmts)
      P.Body.push_back(std::move(S));

    LocalBase += NumSlots;
  }
  P.NumLocals = static_cast<size_t>(LocalBase);
  return P;
}

TraceSet cable::generateProgramCorpus(const ProtocolModel &Model,
                                      EventTable &Table, RNG &Rand,
                                      const CorpusOptions &Options) {
  Interpreter Interp(Table);
  std::vector<Trace> Runs;
  ValueId NextValue = 0;
  for (size_t PI = 0; PI < Options.NumPrograms; ++PI) {
    // Decide the program's buggy-site count up front.
    size_t NumBuggy = 0;
    for (size_t S = 0; S < Options.SitesPerProgram; ++S)
      NumBuggy += Rand.nextBool(Options.BuggySiteRate);
    Program P = synthesizeProgram(Model, Rand,
                                  "prog" + std::to_string(PI),
                                  Options.SitesPerProgram, NumBuggy);

    // Noise: unrelated calls appended so scenarios are not the whole run.
    for (size_t I = 0; I < Options.NoiseCallsPerProgram; ++I) {
      int Local = static_cast<int>(P.NumLocals);
      P.Body.push_back(Stmt::alloc(Local));
      P.Body.push_back(Stmt::call(
          "XNoise" + std::to_string(Rand.nextBounded(3)), {Local}));
      P.NumLocals = static_cast<size_t>(Local) + 1;
    }

    for (size_t R = 0; R < Options.RunsPerProgram; ++R)
      Runs.push_back(Interp.run(P, Rand, NextValue));
  }
  TraceSet Out;
  Out.table() = Table;
  for (Trace &T : Runs)
    Out.add(std::move(T));
  return Out;
}
