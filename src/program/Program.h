//===- program/Program.h - Toy programs that emit traces --------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small program model, so the corpus is generated the way the paper's
/// was: the paper analyzed *runs of 72 programs* (90 traces). Two
/// properties of that regime matter to the method and are lost if one
/// synthesizes traces directly:
///
///  - a buggy call site is buggy in *every* run that reaches it, so the
///    same erroneous scenario recurs across the corpus (this is why
///    frequency-based coring fails, §6, and why Cable exists);
///  - runs of one program are correlated: they repeat that program's mix
///    of scenario sites with different branch outcomes and loop counts.
///
/// A Program is a tree of statements over local variable slots: allocate
/// a fresh runtime value into a local, emit an API event over locals,
/// branch with a probability, or loop a bounded random number of times.
/// The Interpreter plays a program against an RNG and appends events to a
/// trace.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_PROGRAM_PROGRAM_H
#define CABLE_PROGRAM_PROGRAM_H

#include "support/RNG.h"
#include "trace/TraceSet.h"

#include <memory>
#include <string>
#include <vector>

namespace cable {

/// One statement of the toy language.
struct Stmt {
  enum class Kind {
    Alloc, ///< Local[Target] = fresh runtime value.
    Call,  ///< Emit event Name(Locals...).
    If,    ///< With probability Prob run Then, else run Else.
    Loop,  ///< Run Body between MinIter and MaxIter times.
    Seq,   ///< Run Body in order.
  };

  Kind K = Kind::Seq;

  // Alloc.
  int Target = 0;

  // Call.
  std::string Name;
  std::vector<int> Args;

  // If.
  double Prob = 0.5;
  std::vector<Stmt> Then;
  std::vector<Stmt> Else;

  // Loop / Seq.
  unsigned MinIter = 0;
  unsigned MaxIter = 0;
  std::vector<Stmt> Body;

  static Stmt alloc(int Target);
  static Stmt call(std::string Name, std::vector<int> Args);
  static Stmt iff(double Prob, std::vector<Stmt> Then,
                  std::vector<Stmt> Else = {});
  static Stmt loop(unsigned MinIter, unsigned MaxIter, std::vector<Stmt> Body);
  static Stmt seq(std::vector<Stmt> Body);
};

/// A whole program: a name (for reporting) and a statement body over
/// NumLocals local slots.
struct Program {
  std::string Name;
  size_t NumLocals = 0;
  std::vector<Stmt> Body;

  /// Number of Call statements, counted statically.
  size_t numCallSites() const;
};

/// Executes programs, emitting traces.
class Interpreter {
public:
  explicit Interpreter(EventTable &Table) : Table(Table) {}

  /// One run of \p P: every Alloc draws a fresh value from \p NextValue,
  /// every Call appends an event. Branch and loop choices come from
  /// \p Rand.
  Trace run(const Program &P, RNG &Rand, ValueId &NextValue);

private:
  void exec(const std::vector<Stmt> &Body, RNG &Rand,
            std::vector<ValueId> &Locals, ValueId &NextValue, Trace &Out);

  EventTable &Table;
};

} // namespace cable

#endif // CABLE_PROGRAM_PROGRAM_H
