//===- program/Program.cpp - Toy programs that emit traces -----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "program/Program.h"

#include <cassert>

using namespace cable;

Stmt Stmt::alloc(int Target) {
  Stmt S;
  S.K = Kind::Alloc;
  S.Target = Target;
  return S;
}

Stmt Stmt::call(std::string Name, std::vector<int> Args) {
  Stmt S;
  S.K = Kind::Call;
  S.Name = std::move(Name);
  S.Args = std::move(Args);
  return S;
}

Stmt Stmt::iff(double Prob, std::vector<Stmt> Then, std::vector<Stmt> Else) {
  Stmt S;
  S.K = Kind::If;
  S.Prob = Prob;
  S.Then = std::move(Then);
  S.Else = std::move(Else);
  return S;
}

Stmt Stmt::loop(unsigned MinIter, unsigned MaxIter, std::vector<Stmt> Body) {
  assert(MinIter <= MaxIter && "empty iteration range");
  Stmt S;
  S.K = Kind::Loop;
  S.MinIter = MinIter;
  S.MaxIter = MaxIter;
  S.Body = std::move(Body);
  return S;
}

Stmt Stmt::seq(std::vector<Stmt> Body) {
  Stmt S;
  S.K = Kind::Seq;
  S.Body = std::move(Body);
  return S;
}

namespace {

size_t countCalls(const std::vector<Stmt> &Body) {
  size_t N = 0;
  for (const Stmt &S : Body) {
    switch (S.K) {
    case Stmt::Kind::Call:
      ++N;
      break;
    case Stmt::Kind::If:
      N += countCalls(S.Then) + countCalls(S.Else);
      break;
    case Stmt::Kind::Loop:
    case Stmt::Kind::Seq:
      N += countCalls(S.Body);
      break;
    case Stmt::Kind::Alloc:
      break;
    }
  }
  return N;
}

} // namespace

size_t Program::numCallSites() const { return countCalls(Body); }

Trace Interpreter::run(const Program &P, RNG &Rand, ValueId &NextValue) {
  std::vector<ValueId> Locals(P.NumLocals, 0);
  // Locals start bound to fresh values so a Call before any Alloc still
  // refers to something.
  for (ValueId &L : Locals)
    L = NextValue++;
  Trace Out;
  exec(P.Body, Rand, Locals, NextValue, Out);
  return Out;
}

void Interpreter::exec(const std::vector<Stmt> &Body, RNG &Rand,
                       std::vector<ValueId> &Locals, ValueId &NextValue,
                       Trace &Out) {
  for (const Stmt &S : Body) {
    switch (S.K) {
    case Stmt::Kind::Alloc:
      assert(static_cast<size_t>(S.Target) < Locals.size() && "bad local");
      Locals[S.Target] = NextValue++;
      break;
    case Stmt::Kind::Call: {
      std::vector<ValueId> Args;
      Args.reserve(S.Args.size());
      for (int L : S.Args) {
        assert(static_cast<size_t>(L) < Locals.size() && "bad local");
        Args.push_back(Locals[L]);
      }
      Out.append(Table.internEvent(S.Name, Args));
      break;
    }
    case Stmt::Kind::If:
      if (Rand.nextBool(S.Prob))
        exec(S.Then, Rand, Locals, NextValue, Out);
      else
        exec(S.Else, Rand, Locals, NextValue, Out);
      break;
    case Stmt::Kind::Loop: {
      unsigned Iters =
          S.MinIter +
          static_cast<unsigned>(Rand.nextBounded(S.MaxIter - S.MinIter + 1));
      for (unsigned I = 0; I < Iters; ++I)
        exec(S.Body, Rand, Locals, NextValue, Out);
      break;
    }
    case Stmt::Kind::Seq:
      exec(S.Body, Rand, Locals, NextValue, Out);
      break;
    }
  }
}
