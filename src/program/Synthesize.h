//===- program/Synthesize.h - Protocol-exercising programs ------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthesizes toy programs that exercise a protocol, reproducing the
/// paper's corpus regime (§5: traces from full runs of 72 programs).
///
/// Each program embeds several *scenario sites*. A site is compiled from
/// one of the protocol's scenario shapes: required steps become plain
/// calls, optional steps become probability-guarded calls (decided per
/// run), repeats become loops. Whether a site is *buggy* — and with which
/// error mode — is decided once, at synthesis time, by mutating the
/// site's statements. A buggy site therefore emits its erroneous scenario
/// in every run that reaches it, which is exactly the frequency structure
/// that defeats coring (§6) and motivates Cable.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_PROGRAM_SYNTHESIZE_H
#define CABLE_PROGRAM_SYNTHESIZE_H

#include "program/Program.h"
#include "workload/Protocols.h"

namespace cable {

/// Corpus sizing.
struct CorpusOptions {
  size_t NumPrograms = 12;
  size_t RunsPerProgram = 2;
  size_t SitesPerProgram = 4;
  /// Probability that a site is synthesized buggy (the paper's training
  /// sets "may have bugs").
  double BuggySiteRate = 0.25;
  size_t NoiseCallsPerProgram = 3;
};

/// Synthesizes one program with \p NumSites scenario sites of \p Model.
/// \p NumBuggy of them (chosen at random positions) are mutated by
/// weighted error modes.
Program synthesizeProgram(const ProtocolModel &Model, RNG &Rand,
                          std::string Name, size_t NumSites,
                          size_t NumBuggy);

/// Synthesizes a corpus of programs and runs each RunsPerProgram times;
/// the result is the miner's training set. The returned TraceSet owns a
/// copy of \p Table's final state.
TraceSet generateProgramCorpus(const ProtocolModel &Model, EventTable &Table,
                               RNG &Rand, const CorpusOptions &Options);

} // namespace cable

#endif // CABLE_PROGRAM_SYNTHESIZE_H
