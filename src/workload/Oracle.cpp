//===- workload/Oracle.cpp - Ground-truth labeling --------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Oracle.h"

#include "fa/Regex.h"

using namespace cable;

Oracle::Oracle(const ProtocolModel &Model, EventTable &Table)
    : CorrectFA(compileRegexOrDie(Model.CorrectRegex, Table)) {}

bool Oracle::isCorrect(const Trace &T, const EventTable &Table) const {
  return CorrectFA.accepts(T, Table);
}

std::vector<std::string> Oracle::labelNames(const Session &S) const {
  std::vector<std::string> Out;
  Out.reserve(S.numObjects());
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    Out.push_back(isCorrect(S.object(Obj), S.table()) ? "good" : "bad");
  return Out;
}

std::vector<std::string> Oracle::variantLabelNames(const Session &S) const {
  std::vector<std::string> Out;
  Out.reserve(S.numObjects());
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    const Trace &T = S.object(Obj);
    if (!isCorrect(T, S.table())) {
      Out.push_back("bad");
      continue;
    }
    std::string Variant =
        T.empty() ? "empty" : S.table().nameText(S.table().event(T[0]).Name);
    Out.push_back("good_" + Variant);
  }
  return Out;
}

ReferenceLabeling Oracle::referenceLabeling(Session &S, bool Variants) const {
  return makeReferenceLabeling(S, Variants ? variantLabelNames(S)
                                           : labelNames(S));
}
