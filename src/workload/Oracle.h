//===- workload/Oracle.h - Ground-truth labeling ----------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference labeling for strategy measurement. The paper's evaluation
/// replays an expert's accurate labeling; here the expert is replaced by
/// the protocol's correct-language oracle: a trace is `good` iff the
/// protocol's correct FA accepts it. A multi-label mode reproduces §2.2's
/// defense against overgeneralization by splitting `good` per variant
/// (e.g. `good_fopen` / `good_popen`, keyed on the first event's name).
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_WORKLOAD_ORACLE_H
#define CABLE_WORKLOAD_ORACLE_H

#include "cable/Session.h"
#include "cable/WellFormed.h"
#include "fa/Automaton.h"
#include "workload/Protocols.h"

namespace cable {

/// Classifies traces against a protocol's correct language.
class Oracle {
public:
  /// Compiles \p Model.CorrectRegex over \p Table.
  Oracle(const ProtocolModel &Model, EventTable &Table);

  /// True iff the correct FA accepts \p T.
  bool isCorrect(const Trace &T, const EventTable &Table) const;

  /// The correct-language FA (epsilon-free).
  const Automaton &correctFA() const { return CorrectFA; }

  /// Per-object label names ("good"/"bad") for \p S's objects.
  std::vector<std::string> labelNames(const Session &S) const;

  /// Variant labels: `bad`, or `good_<first event name>` (§2.2's several
  /// kinds of good labels).
  std::vector<std::string> variantLabelNames(const Session &S) const;

  /// Convenience: builds the ReferenceLabeling for \p S (interning into
  /// it). \p Variants selects variantLabelNames.
  ReferenceLabeling referenceLabeling(Session &S,
                                      bool Variants = false) const;

private:
  Automaton CorrectFA;
};

} // namespace cable

#endif // CABLE_WORKLOAD_ORACLE_H
