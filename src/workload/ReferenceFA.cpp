//===- workload/ReferenceFA.cpp - Per-protocol reference FAs ---------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/ReferenceFA.h"

using namespace cable;

Automaton cable::makeProtocolReferenceFA(const std::vector<Trace> &Traces,
                                         EventTable &Table,
                                         const ProtocolModel &Model) {
  std::vector<EventId> Alphabet = templateAlphabet(Traces);
  Automaton Ref = makeUnorderedFA(Alphabet, Table);
  for (const ProtocolModel::SeedSpec &Spec : Model.ReferenceSeeds) {
    std::vector<ValueId> Args;
    Args.reserve(Spec.Args.size());
    for (int Slot : Spec.Args)
      Args.push_back(static_cast<ValueId>(Slot));
    EventId Seed = Table.internEvent(Spec.Name, Args);
    Ref = Automaton::disjointUnion(Ref, makeSeedOrderFA(Alphabet, Seed, Table));
  }
  return Ref;
}
