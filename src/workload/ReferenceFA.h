//===- workload/ReferenceFA.h - Per-protocol reference FAs ------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the reference FA Step 1a prescribes for each protocol workload.
///
/// Two templates are combined (via disjoint union, which unions the
/// executed-transition relations):
///
///  - the unordered template always participates, so every trace is
///    accepted and traces are distinguished by which events they contain;
///  - protocols whose error modes are order-only (double destroy, use
///    after destroy) add a seed-order component on their discriminating
///    event, which separates "before the destroy" from "after it".
///
/// With this construction the trace's attribute set determines its
/// good/bad classification for every protocol in the suite, which makes
/// every induced lattice well-formed (§4.3) — the property the labeling-
/// cost measurements of Table 3 rely on.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_WORKLOAD_REFERENCEFA_H
#define CABLE_WORKLOAD_REFERENCEFA_H

#include "fa/Templates.h"
#include "workload/Protocols.h"

namespace cable {

/// Builds the recommended reference FA for \p Model over the scenario set
/// \p Traces (whose events live in \p Table).
Automaton makeProtocolReferenceFA(const std::vector<Trace> &Traces,
                                  EventTable &Table,
                                  const ProtocolModel &Model);

} // namespace cable

#endif // CABLE_WORKLOAD_REFERENCEFA_H
