//===- workload/Protocols.h - Protocol workload models ----------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic workload models for the paper's evaluation (§5).
///
/// The paper debugs 17 specifications mined from runs of 72 real X11
/// programs. Those traces are not available, so each specification is
/// modeled as a *protocol*: a set of weighted correct scenario shapes (a
/// linear sequence of required steps, optional-set steps, one-of choices,
/// and bounded repeats over object slots), a set of weighted error modes
/// that mutate correct scenarios (leaks, double frees, wrong-close,
/// use-after-free, ...), an oracle regular expression defining the correct
/// language, and sizing knobs that reproduce each specification's reported
/// regime (e.g. fewer than 10 unique scenario classes for XGetSelOwner
/// versus on the order of a hundred for XtFree).
///
/// Fourteen protocol names come from the paper's text; the remaining three
/// rows of Table 1 are reconstructed in the same style (see DESIGN.md §6).
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_WORKLOAD_PROTOCOLS_H
#define CABLE_WORKLOAD_PROTOCOLS_H

#include <cstdint>
#include <string>
#include <vector>

namespace cable {

/// An event template inside a scenario shape: an interaction name plus the
/// object slots it mentions (slot k becomes the scenario's k-th value).
struct ProtoEvent {
  std::string Name;
  std::vector<int> Objs;
};

/// One step of a linear scenario shape.
struct ShapeStep {
  enum class Kind {
    Required, ///< Emit Events[0].
    Optional, ///< Emit each event independently with IncludeProb, shuffled.
    OneOf,    ///< Emit exactly one event, chosen by Weights.
    Repeat,   ///< Emit between MinReps and MaxReps events drawn from Events.
  };

  Kind K = Kind::Required;
  std::vector<ProtoEvent> Events;
  std::vector<double> Weights; ///< OneOf only; empty = uniform.
  double IncludeProb = 0.5;    ///< Optional only.
  unsigned MinReps = 0;        ///< Repeat only.
  unsigned MaxReps = 3;        ///< Repeat only.

  static ShapeStep required(ProtoEvent E);
  static ShapeStep optional(std::vector<ProtoEvent> Events,
                            double IncludeProb = 0.5);
  static ShapeStep oneOf(std::vector<ProtoEvent> Events,
                         std::vector<double> Weights = {});
  static ShapeStep repeat(std::vector<ProtoEvent> Events, unsigned MinReps,
                          unsigned MaxReps);
};

/// A linear scenario shape: steps emitted in order.
struct ScenarioShape {
  std::vector<ShapeStep> Steps;
};

/// A mutation turning a correct scenario into an erroneous one.
struct ErrorMode {
  enum class Kind {
    DropNamed,      ///< Remove the last event named A (leak).
    DropFirst,      ///< Remove the first event (use without create).
    DuplicateNamed, ///< Duplicate the last event named A (double free).
    ReplaceNamed,   ///< Rename the last event named A to B (wrong close).
    AppendNamed,    ///< Append event A with the first event's arguments
                    ///< (use after free).
    TruncateTail,   ///< Drop the final event (truncated protocol).
  };

  Kind K = Kind::TruncateTail;
  std::string A;
  std::string B;

  static ErrorMode dropNamed(std::string A);
  static ErrorMode dropFirst();
  static ErrorMode duplicateNamed(std::string A);
  static ErrorMode replaceNamed(std::string A, std::string B);
  static ErrorMode appendNamed(std::string A);
  static ErrorMode truncateTail();
};

/// A complete workload model for one specification.
struct ProtocolModel {
  std::string Name;        ///< Table 1 row name, e.g. "XtFree".
  std::string Description; ///< Table 1 English gloss.
  bool Reconstructed = false; ///< True for the three rows not named in the
                              ///< paper's text.

  /// Oracle regular expression (fa/Regex syntax) for the correct scenario
  /// language; also the expected shape of the debugged specification.
  std::string CorrectRegex;

  /// Seed event names for scenario extraction.
  std::vector<std::string> Seeds;

  /// A seed event (name + object slots) for a seed-order reference-FA
  /// component.
  struct SeedSpec {
    std::string Name;
    std::vector<int> Args = {0};
  };

  /// When nonempty, the protocol's errors include order-only violations
  /// (double destroy, use after destroy), so the recommended reference FA
  /// adds one seed-order component per entry to the unordered template.
  /// Empty = the unordered template alone separates correct from
  /// erroneous traces.
  std::vector<SeedSpec> ReferenceSeeds;

  /// Weighted correct scenario shapes.
  std::vector<std::pair<double, ScenarioShape>> Shapes;

  /// Weighted error modes.
  std::vector<std::pair<double, ErrorMode>> Errors;

  // Sizing knobs (chosen per protocol to reproduce §5's regimes).
  size_t NumRuns = 12;          ///< Program runs to synthesize.
  size_t ScenariosPerRun = 8;   ///< Scenarios interleaved into each run.
  double ErrorRate = 0.2;       ///< Fraction of scenarios mutated.
  size_t NoisePerRun = 4;       ///< Unrelated events mixed into each run.
};

/// The 17 evaluation protocols, in Table 1 order.
const std::vector<ProtocolModel> &allProtocols();

/// Looks a protocol up by name; returns nullptr if unknown. This is the
/// entry point for user-supplied names (CLI --protocol flags); callers
/// should report the valid names from protocolNames() on failure.
const ProtocolModel *findProtocol(const std::string &Name);

/// All valid protocol names, in Table 1 order.
std::vector<std::string> protocolNames();

/// Looks a protocol up by name; aborts if unknown. Use only with literal
/// names (tests, benchmarks); user input must go through findProtocol.
const ProtocolModel &protocolByName(const std::string &Name);

/// The §2 running example: the stdio fopen/popen protocol.
ProtocolModel stdioProtocol();

/// The §2.1 *buggy* stdio specification of Fig. 1 (allows fclose on a
/// popen'ed pointer), as a regex.
std::string stdioBuggyRegex();

} // namespace cable

#endif // CABLE_WORKLOAD_PROTOCOLS_H
