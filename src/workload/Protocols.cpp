//===- workload/Protocols.cpp - Protocol workload models -------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Definitions of the 17 evaluation protocols. Sizing knobs are tuned so
/// the unique-scenario-class regimes match what §5.3 reports: a handful of
/// classes for the small specifications (XGetSelOwner, PrsTransTbl,
/// RmvTimeOut), tens for the medium ones, and on the order of a hundred
/// for XtFree (whose Baseline cost of 224 implies ~112 classes).
///
//===----------------------------------------------------------------------===//

#include "workload/Protocols.h"

#include "support/Error.h"

using namespace cable;

ShapeStep ShapeStep::required(ProtoEvent E) {
  ShapeStep S;
  S.K = Kind::Required;
  S.Events.push_back(std::move(E));
  return S;
}

ShapeStep ShapeStep::optional(std::vector<ProtoEvent> Events,
                              double IncludeProb) {
  ShapeStep S;
  S.K = Kind::Optional;
  S.Events = std::move(Events);
  S.IncludeProb = IncludeProb;
  return S;
}

ShapeStep ShapeStep::oneOf(std::vector<ProtoEvent> Events,
                           std::vector<double> Weights) {
  ShapeStep S;
  S.K = Kind::OneOf;
  S.Events = std::move(Events);
  S.Weights = std::move(Weights);
  return S;
}

ShapeStep ShapeStep::repeat(std::vector<ProtoEvent> Events, unsigned MinReps,
                            unsigned MaxReps) {
  ShapeStep S;
  S.K = Kind::Repeat;
  S.Events = std::move(Events);
  S.MinReps = MinReps;
  S.MaxReps = MaxReps;
  return S;
}

ErrorMode ErrorMode::dropNamed(std::string A) {
  return ErrorMode{Kind::DropNamed, std::move(A), ""};
}
ErrorMode ErrorMode::dropFirst() { return ErrorMode{Kind::DropFirst, "", ""}; }
ErrorMode ErrorMode::duplicateNamed(std::string A) {
  return ErrorMode{Kind::DuplicateNamed, std::move(A), ""};
}
ErrorMode ErrorMode::replaceNamed(std::string A, std::string B) {
  return ErrorMode{Kind::ReplaceNamed, std::move(A), std::move(B)};
}
ErrorMode ErrorMode::appendNamed(std::string A) {
  return ErrorMode{Kind::AppendNamed, std::move(A), ""};
}
ErrorMode ErrorMode::truncateTail() {
  return ErrorMode{Kind::TruncateTail, "", ""};
}

namespace {

/// Shorthand for a single-slot event template.
ProtoEvent PE(std::string Name, std::vector<int> Objs = {0}) {
  return ProtoEvent{std::move(Name), std::move(Objs)};
}

/// One create-use-destroy protocol over a single object: `Create`, then an
/// optional set of `Uses`, then `Destroy`, with the standard resource error
/// modes (leak, double destroy, use-after-destroy).
ProtocolModel resourceProtocol(std::string Name, std::string Description,
                               std::string Create,
                               std::vector<std::string> Uses,
                               std::string Destroy, double IncludeProb) {
  ProtocolModel M;
  M.Name = std::move(Name);
  M.Description = std::move(Description);
  M.Seeds = {Create};

  ScenarioShape Shape;
  Shape.Steps.push_back(ShapeStep::required(PE(Create)));
  std::vector<ProtoEvent> UseEvents;
  for (const std::string &U : Uses)
    UseEvents.push_back(PE(U));
  if (!UseEvents.empty())
    Shape.Steps.push_back(ShapeStep::optional(UseEvents, IncludeProb));
  Shape.Steps.push_back(ShapeStep::required(PE(Destroy)));
  M.Shapes.emplace_back(1.0, std::move(Shape));

  M.Errors.emplace_back(0.4, ErrorMode::dropNamed(Destroy));      // Leak.
  M.Errors.emplace_back(0.3, ErrorMode::duplicateNamed(Destroy)); // Double.
  if (!Uses.empty())
    M.Errors.emplace_back(0.3, ErrorMode::appendNamed(Uses.front()));
  else
    M.Errors.emplace_back(0.3, ErrorMode::dropFirst());

  // Oracle: Create [use|use|...]* Destroy.
  std::string Alt;
  for (size_t I = 0; I < Uses.size(); ++I) {
    if (I != 0)
      Alt += " | ";
    Alt += Uses[I] + "(v0)";
  }
  M.CorrectRegex = Create + "(v0) " +
                   (Alt.empty() ? std::string() : "[" + Alt + "]* ") +
                   Destroy + "(v0)";
  // Double-destroy and use-after-destroy are order-only violations.
  M.ReferenceSeeds = {{Destroy, {0}}};
  return M;
}

std::vector<ProtocolModel> makeAllProtocols() {
  std::vector<ProtocolModel> Out;

  // 1. XGetSelOwner — tiny: intern the atom, then query the owner.
  {
    ProtocolModel M;
    M.Name = "XGetSelOwner";
    M.Description = "Intern a selection atom before querying its owner";
    M.Seeds = {"XInternAtom", "XGetSelectionOwner"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("XInternAtom")));
    S.Steps.push_back(
        ShapeStep::optional({PE("XGetSelectionOwner")}, 0.7));
    S.Steps.push_back(ShapeStep::required(PE("XGetSelectionOwner")));
    M.Shapes.emplace_back(1.0, std::move(S));
    M.Errors.emplace_back(1.0, ErrorMode::dropFirst());
    M.CorrectRegex = "XInternAtom(v0) XGetSelectionOwner(v0)+";
    M.NumRuns = 6;
    M.ScenariosPerRun = 4;
    M.ErrorRate = 0.2;
    Out.push_back(std::move(M));
  }

  // 2. XSetSelOwner — set the owner after interning; may re-query.
  {
    ProtocolModel M;
    M.Name = "XSetSelOwner";
    M.Description =
        "Intern an atom, set the selection owner, optionally verify";
    M.Seeds = {"XInternAtom", "XSetSelectionOwner"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("XInternAtom")));
    S.Steps.push_back(ShapeStep::required(PE("XSetSelectionOwner")));
    S.Steps.push_back(ShapeStep::optional(
        {PE("XGetSelectionOwner"), PE("XConvertSelection")}, 0.5));
    M.Shapes.emplace_back(1.0, std::move(S));
    M.Errors.emplace_back(0.6, ErrorMode::dropFirst());
    M.Errors.emplace_back(
        0.4, ErrorMode::duplicateNamed("XSetSelectionOwner"));
    M.CorrectRegex = "XInternAtom(v0) XSetSelectionOwner(v0) "
                     "[XGetSelectionOwner(v0) | XConvertSelection(v0)]*";
    M.ReferenceSeeds = {{"XSetSelectionOwner", {0}}};
    M.NumRuns = 8;
    M.ScenariosPerRun = 5;
    M.ErrorRate = 0.25;
    Out.push_back(std::move(M));
  }

  // 3. XtOwnSelection — own, serve conversions, then disown or lose.
  {
    ProtocolModel M;
    M.Name = "XtOwnSel";
    M.Description =
        "Own a selection, serve convert callbacks, then disown or lose it";
    M.Seeds = {"XtOwnSelection"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("XtOwnSelection")));
    S.Steps.push_back(ShapeStep::optional(
        {PE("ConvertSelectionCB"), PE("ConvertSelectionCB")}, 0.5));
    S.Steps.push_back(ShapeStep::oneOf(
        {PE("XtDisownSelection"), PE("LoseSelectionCB")}, {0.6, 0.4}));
    M.Shapes.emplace_back(1.0, std::move(S));
    M.Errors.emplace_back(0.5, ErrorMode::dropNamed("XtDisownSelection"));
    M.Errors.emplace_back(0.5, ErrorMode::appendNamed("ConvertSelectionCB"));
    M.CorrectRegex = "XtOwnSelection(v0) ConvertSelectionCB(v0)* "
                     "[XtDisownSelection(v0) | LoseSelectionCB(v0)]";
    M.ReferenceSeeds = {{"XtDisownSelection", {0}},
                        {"LoseSelectionCB", {0}}};
    M.NumRuns = 8;
    M.ScenariosPerRun = 6;
    M.ErrorRate = 0.2;
    Out.push_back(std::move(M));
  }

  // 4. XInternAtom — intern once, then use the atom.
  {
    ProtocolModel M;
    M.Name = "XInternAtom";
    M.Description = "Intern an atom before any use of it";
    M.Seeds = {"XInternAtom", "XGetAtomName"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("XInternAtom")));
    S.Steps.push_back(ShapeStep::optional(
        {PE("XGetAtomName"), PE("XChangeProperty"), PE("XGetWindowProperty")},
        0.5));
    S.Steps.push_back(ShapeStep::required(PE("XGetAtomName")));
    M.Shapes.emplace_back(1.0, std::move(S));
    M.Errors.emplace_back(1.0, ErrorMode::dropFirst());
    M.CorrectRegex =
        "XInternAtom(v0) [XGetAtomName(v0) | XChangeProperty(v0) | "
        "XGetWindowProperty(v0)]* XGetAtomName(v0)";
    M.NumRuns = 10;
    M.ScenariosPerRun = 6;
    M.ErrorRate = 0.2;
    Out.push_back(std::move(M));
  }

  // 5. PrsTransTbl — parse a translation table, then install it.
  {
    ProtocolModel M;
    M.Name = "PrsTransTbl";
    M.Description =
        "Parse a translation table, then augment or override with it";
    M.Seeds = {"XtParseTranslationTable"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("XtParseTranslationTable")));
    S.Steps.push_back(ShapeStep::oneOf(
        {PE("XtAugmentTranslations"), PE("XtOverrideTranslations")}));
    M.Shapes.emplace_back(1.0, std::move(S));
    M.Errors.emplace_back(1.0,
                          ErrorMode::dropNamed("XtAugmentTranslations"));
    M.CorrectRegex = "XtParseTranslationTable(v0) "
                     "[XtAugmentTranslations(v0) | "
                     "XtOverrideTranslations(v0)]";
    M.NumRuns = 6;
    M.ScenariosPerRun = 4;
    M.ErrorRate = 0.25;
    Out.push_back(std::move(M));
  }

  // 6. PrsAccelTbl — parse an accelerator table, then install it.
  {
    ProtocolModel M;
    M.Name = "PrsAccelTbl";
    M.Description = "Parse an accelerator table, then install accelerators";
    M.Seeds = {"XtParseAcceleratorTable", "XtInstallAccelerators"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("XtParseAcceleratorTable")));
    S.Steps.push_back(ShapeStep::optional(
        {PE("XtInstallAccelerators"), PE("XtInstallAllAccelerators")}, 0.6));
    S.Steps.push_back(ShapeStep::required(PE("XtInstallAccelerators")));
    M.Shapes.emplace_back(1.0, std::move(S));
    M.Errors.emplace_back(1.0, ErrorMode::dropFirst());
    M.CorrectRegex =
        "XtParseAcceleratorTable(v0) [XtInstallAccelerators(v0) | "
        "XtInstallAllAccelerators(v0)]* XtInstallAccelerators(v0)";
    M.NumRuns = 10;
    M.ScenariosPerRun = 5;
    M.ErrorRate = 0.25;
    Out.push_back(std::move(M));
  }

  // 7. RmvTimeOut — a timeout either fires or is removed, never both.
  {
    ProtocolModel M;
    M.Name = "RmvTimeOut";
    M.Description =
        "A timeout either fires its callback or is removed, never both";
    M.Seeds = {"XtAppAddTimeOut"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("XtAppAddTimeOut")));
    S.Steps.push_back(ShapeStep::oneOf(
        {PE("TimeOutCB"), PE("XtRemoveTimeOut")}, {0.6, 0.4}));
    M.Shapes.emplace_back(1.0, std::move(S));
    // The race: callback fires and the handle is removed anyway.
    M.Errors.emplace_back(0.7, ErrorMode::appendNamed("XtRemoveTimeOut"));
    M.Errors.emplace_back(0.3, ErrorMode::dropNamed("TimeOutCB"));
    M.CorrectRegex =
        "XtAppAddTimeOut(v0) [TimeOutCB(v0) | XtRemoveTimeOut(v0)]";
    // "remove after remove" only differs from a correct trace in event
    // order, so the reference FA needs a seed-order component.
    M.ReferenceSeeds = {{"XtRemoveTimeOut", {0}}, {"TimeOutCB", {0}}};
    M.NumRuns = 6;
    M.ScenariosPerRun = 4;
    M.ErrorRate = 0.25;
    Out.push_back(std::move(M));
  }

  // 8. Quarks — a quark is created once, then converted back freely.
  {
    ProtocolModel M;
    M.Name = "Quarks";
    M.Description =
        "Create a quark from a string before converting it back";
    M.Seeds = {"XrmStringToQuark", "XrmQuarkToString"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("XrmStringToQuark")));
    S.Steps.push_back(ShapeStep::optional(
        {PE("XrmQuarkToString"), PE("XrmQPutResource"), PE("XrmQGetResource")},
        0.5));
    S.Steps.push_back(ShapeStep::required(PE("XrmQuarkToString")));
    M.Shapes.emplace_back(1.0, std::move(S));
    M.Errors.emplace_back(1.0, ErrorMode::dropFirst());
    M.CorrectRegex = "XrmStringToQuark(v0) [XrmQuarkToString(v0) | "
                     "XrmQPutResource(v0) | XrmQGetResource(v0)]* "
                     "XrmQuarkToString(v0)";
    M.NumRuns = 10;
    M.ScenariosPerRun = 5;
    M.ErrorRate = 0.2;
    Out.push_back(std::move(M));
  }

  // 9. RegionsAlloc — create/use/destroy one region.
  {
    ProtocolModel M = resourceProtocol(
        "RegionsAlloc", "A region is created, used, and destroyed once",
        "XCreateRegion",
        {"XOffsetRegion", "XShrinkRegion", "XClipBox", "XEmptyRegion"},
        "XDestroyRegion", 0.45);
    M.NumRuns = 14;
    M.ScenariosPerRun = 6;
    M.ErrorRate = 0.2;
    Out.push_back(std::move(M));
  }

  // 10. RegionsBig — three regions interact; high diversity.
  {
    ProtocolModel M;
    M.Name = "RegionsBig";
    M.Description =
        "Binary region operations read two live regions and write a third";
    M.Seeds = {"XCreateRegion"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("XCreateRegion", {0})));
    S.Steps.push_back(ShapeStep::required(PE("XCreateRegion", {1})));
    S.Steps.push_back(ShapeStep::required(PE("XCreateRegion", {2})));
    // At least one binary operation always ties the three regions into one
    // dataflow scenario (otherwise slicing would rightly split them).
    S.Steps.push_back(ShapeStep::oneOf(
        {PE("XUnionRegion", {0, 1, 2}), PE("XIntersectRegion", {0, 1, 2})}));
    S.Steps.push_back(ShapeStep::optional(
        {PE("XUnionRegion", {0, 1, 2}), PE("XIntersectRegion", {0, 1, 2}),
         PE("XSubtractRegion", {0, 1, 2}), PE("XXorRegion", {0, 1, 2}),
         PE("XOffsetRegion", {2}), PE("XEmptyRegion", {2})},
        0.45));
    S.Steps.push_back(ShapeStep::required(PE("XDestroyRegion", {0})));
    S.Steps.push_back(ShapeStep::required(PE("XDestroyRegion", {1})));
    S.Steps.push_back(ShapeStep::required(PE("XDestroyRegion", {2})));
    M.Shapes.emplace_back(1.0, std::move(S));
    M.Errors.emplace_back(0.4, ErrorMode::dropNamed("XDestroyRegion"));
    M.Errors.emplace_back(0.3, ErrorMode::duplicateNamed("XDestroyRegion"));
    M.Errors.emplace_back(0.3, ErrorMode::appendNamed("XUnionRegion"));
    M.CorrectRegex =
        "XCreateRegion(v0) XCreateRegion(v1) XCreateRegion(v2) "
        "[XUnionRegion(v0,v1,v2) | XIntersectRegion(v0,v1,v2) | "
        "XSubtractRegion(v0,v1,v2) | XXorRegion(v0,v1,v2) | "
        "XOffsetRegion(v2) | XEmptyRegion(v2)]* "
        "XDestroyRegion(v0) XDestroyRegion(v1) XDestroyRegion(v2)";
    M.ReferenceSeeds = {{"XDestroyRegion", {2}}};
    M.NumRuns = 20;
    M.ScenariosPerRun = 6;
    M.ErrorRate = 0.25;
    Out.push_back(std::move(M));
  }

  // 11. XFreeGC — a GC is created, configured, used, and freed once.
  {
    ProtocolModel M = resourceProtocol(
        "XFreeGC", "A graphics context is freed exactly once",
        "XCreateGC",
        {"XSetForeground", "XSetBackground", "XSetLineAttributes",
         "XSetClipMask"},
        "XFreeGC", 0.45);
    M.NumRuns = 14;
    M.ScenariosPerRun = 6;
    M.ErrorRate = 0.2;
    Out.push_back(std::move(M));
  }

  // 12. XPutImage — an image is created, drawn, and destroyed.
  {
    ProtocolModel M = resourceProtocol(
        "XPutImage", "An image is created, drawn from, and destroyed once",
        "XCreateImage", {"XPutImage", "XGetPixel", "XPutPixel", "XSubImage"},
        "XDestroyImage", 0.45);
    M.NumRuns = 14;
    M.ScenariosPerRun = 6;
    M.ErrorRate = 0.2;
    Out.push_back(std::move(M));
  }

  // 13. XSetFont — a font and a GC interact; errors differ from correct
  // traces only in event order, which makes clusters mix (the paper found
  // this specification barely easier with Cable than by hand).
  {
    ProtocolModel M;
    M.Name = "XSetFont";
    M.Description =
        "A font must be loaded and bound to the GC before drawing";
    M.Seeds = {"XLoadFont"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("XLoadFont", {0})));
    S.Steps.push_back(ShapeStep::required(PE("XCreateGC", {1})));
    S.Steps.push_back(ShapeStep::required(PE("XSetFont", {1, 0})));
    S.Steps.push_back(ShapeStep::optional(
        {PE("XDrawString", {1}), PE("XDrawImageString", {1}),
         PE("XTextWidth", {0})},
        0.5));
    S.Steps.push_back(ShapeStep::required(PE("XUnloadFont", {0})));
    S.Steps.push_back(ShapeStep::required(PE("XFreeGC", {1})));
    M.Shapes.emplace_back(1.0, std::move(S));
    // Use-after-unload: drawing still happens after the font is gone; the
    // trace's event *set* equals a correct trace's, only the order differs.
    M.Errors.emplace_back(0.5, ErrorMode::appendNamed("XDrawString"));
    M.Errors.emplace_back(0.5, ErrorMode::dropNamed("XUnloadFont"));
    M.CorrectRegex =
        "XLoadFont(v0) XCreateGC(v1) XSetFont(v1,v0) [XDrawString(v1) | "
        "XDrawImageString(v1) | XTextWidth(v0)]* XUnloadFont(v0) "
        "XFreeGC(v1)";
    M.ReferenceSeeds = {{"XUnloadFont", {0}}};
    M.NumRuns = 14;
    M.ScenariosPerRun = 6;
    M.ErrorRate = 0.3;
    Out.push_back(std::move(M));
  }

  // 14. XtFree — the paper's dramatic case: many allocation sites and use
  // patterns produce on the order of a hundred unique scenario classes.
  {
    ProtocolModel M;
    M.Name = "XtFree";
    M.Description = "Xt heap storage is freed exactly once";
    M.Seeds = {"XtMalloc", "XtNew", "XtNewString"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::oneOf(
        {PE("XtMalloc"), PE("XtNew"), PE("XtNewString")}, {0.5, 0.25, 0.25}));
    S.Steps.push_back(ShapeStep::optional(
        {PE("ReadMem"), PE("WriteMem"), PE("XtSetArg"), PE("StrCopyTo")},
        0.5));
    S.Steps.push_back(ShapeStep::required(PE("XtFree")));
    M.Shapes.emplace_back(1.0, std::move(S));
    M.Errors.emplace_back(0.4, ErrorMode::dropNamed("XtFree"));
    M.Errors.emplace_back(0.35, ErrorMode::duplicateNamed("XtFree"));
    M.Errors.emplace_back(0.25, ErrorMode::appendNamed("WriteMem"));
    M.CorrectRegex =
        "[XtMalloc(v0) | XtNew(v0) | XtNewString(v0)] [ReadMem(v0) | "
        "WriteMem(v0) | XtSetArg(v0) | StrCopyTo(v0)]* XtFree(v0)";
    M.ReferenceSeeds = {{"XtFree", {0}}};
    M.NumRuns = 26;
    M.ScenariosPerRun = 9;
    M.ErrorRate = 0.25;
    Out.push_back(std::move(M));
  }

  // 15. XOpenDisplay (reconstructed) — open/close a display.
  {
    ProtocolModel M = resourceProtocol(
        "XOpenDisplay", "A display connection is closed exactly once",
        "XOpenDisplay", {"XSync", "XFlush"}, "XCloseDisplay", 0.5);
    M.Reconstructed = true;
    M.NumRuns = 6;
    M.ScenariosPerRun = 4;
    M.ErrorRate = 0.2;
    Out.push_back(std::move(M));
  }

  // 16. XCreatePixmap (reconstructed) — pixmaps are freed exactly once.
  {
    ProtocolModel M = resourceProtocol(
        "XCreatePixmap", "A pixmap is freed exactly once", "XCreatePixmap",
        {"XCopyArea", "XFillRectangle"}, "XFreePixmap", 0.5);
    M.Reconstructed = true;
    M.NumRuns = 8;
    M.ScenariosPerRun = 5;
    M.ErrorRate = 0.2;
    Out.push_back(std::move(M));
  }

  // 17. XSaveContext (reconstructed) — save, find, delete a context slot.
  {
    ProtocolModel M;
    M.Name = "XSaveContext";
    M.Description =
        "A context entry is saved before lookups and deleted afterwards";
    M.Reconstructed = true;
    M.Seeds = {"XSaveContext"};
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("XSaveContext")));
    S.Steps.push_back(ShapeStep::optional(
        {PE("XFindContext"), PE("XFindContext")}, 0.6));
    S.Steps.push_back(ShapeStep::required(PE("XDeleteContext")));
    M.Shapes.emplace_back(1.0, std::move(S));
    M.Errors.emplace_back(0.5, ErrorMode::dropNamed("XDeleteContext"));
    M.Errors.emplace_back(0.5, ErrorMode::appendNamed("XFindContext"));
    M.CorrectRegex =
        "XSaveContext(v0) XFindContext(v0)* XDeleteContext(v0)";
    M.ReferenceSeeds = {{"XDeleteContext", {0}}};
    M.NumRuns = 8;
    M.ScenariosPerRun = 5;
    M.ErrorRate = 0.25;
    Out.push_back(std::move(M));
  }

  return Out;
}

} // namespace

const std::vector<ProtocolModel> &cable::allProtocols() {
  static const std::vector<ProtocolModel> Protocols = makeAllProtocols();
  return Protocols;
}

const ProtocolModel *cable::findProtocol(const std::string &Name) {
  for (const ProtocolModel &M : allProtocols())
    if (M.Name == Name)
      return &M;
  return nullptr;
}

std::vector<std::string> cable::protocolNames() {
  std::vector<std::string> Out;
  Out.reserve(allProtocols().size());
  for (const ProtocolModel &M : allProtocols())
    Out.push_back(M.Name);
  return Out;
}

const ProtocolModel &cable::protocolByName(const std::string &Name) {
  if (const ProtocolModel *M = findProtocol(Name))
    return *M;
  reportFatalError(("unknown protocol: " + Name).c_str());
}

ProtocolModel cable::stdioProtocol() {
  ProtocolModel M;
  M.Name = "stdio";
  M.Description =
      "fopen pointers are closed with fclose, popen pointers with pclose";
  M.Seeds = {"fopen", "popen"};
  {
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("fopen")));
    S.Steps.push_back(ShapeStep::repeat({PE("fread"), PE("fwrite")}, 0, 3));
    S.Steps.push_back(ShapeStep::required(PE("fclose")));
    M.Shapes.emplace_back(0.55, std::move(S));
  }
  {
    ScenarioShape S;
    S.Steps.push_back(ShapeStep::required(PE("popen")));
    S.Steps.push_back(ShapeStep::repeat({PE("fread"), PE("fwrite")}, 0, 3));
    S.Steps.push_back(ShapeStep::required(PE("pclose")));
    M.Shapes.emplace_back(0.45, std::move(S));
  }
  // The §2.1 violation population: pipes closed with fclose, plus leaks.
  M.Errors.emplace_back(0.5, ErrorMode::replaceNamed("pclose", "fclose"));
  M.Errors.emplace_back(0.25, ErrorMode::dropNamed("fclose"));
  M.Errors.emplace_back(0.25, ErrorMode::dropNamed("pclose"));
  M.CorrectRegex =
      "[fopen(v0) [fread(v0) | fwrite(v0)]* fclose(v0)] | "
      "[popen(v0) [fread(v0) | fwrite(v0)]* pclose(v0)]";
  M.NumRuns = 12;
  M.ScenariosPerRun = 6;
  M.ErrorRate = 0.3;
  return M;
}

std::string cable::stdioBuggyRegex() {
  return "[fopen(v0) | popen(v0)] [fread(v0) | fwrite(v0)]* fclose(v0)";
}
