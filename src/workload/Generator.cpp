//===- workload/Generator.cpp - Synthetic trace generation -----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace cable;

namespace {

/// Emits \p E with scenario slots mapped to values (slot k -> k).
Event instantiate(const ProtoEvent &E, EventTable &Table) {
  std::vector<ValueId> Args;
  Args.reserve(E.Objs.size());
  for (int Slot : E.Objs) {
    assert(Slot >= 0 && "negative object slot");
    Args.push_back(static_cast<ValueId>(Slot));
  }
  return Event(Table.internName(E.Name), std::move(Args));
}

} // namespace

Trace WorkloadGenerator::generateCorrect(RNG &Rand) {
  // Pick a shape by weight.
  std::vector<double> Weights;
  for (const auto &[W, Shape] : Model.Shapes)
    Weights.push_back(W);
  const ScenarioShape &Shape = Model.Shapes[Rand.pickWeighted(Weights)].second;

  Trace Out;
  for (const ShapeStep &Step : Shape.Steps) {
    switch (Step.K) {
    case ShapeStep::Kind::Required:
      assert(Step.Events.size() == 1 && "Required step takes one event");
      Out.append(Table.internEvent(instantiate(Step.Events[0], Table)));
      break;
    case ShapeStep::Kind::Optional: {
      std::vector<size_t> Chosen;
      for (size_t I = 0; I < Step.Events.size(); ++I)
        if (Rand.nextBool(Step.IncludeProb))
          Chosen.push_back(I);
      Rand.shuffle(Chosen);
      for (size_t I : Chosen)
        Out.append(Table.internEvent(instantiate(Step.Events[I], Table)));
      break;
    }
    case ShapeStep::Kind::OneOf: {
      std::vector<double> W = Step.Weights;
      if (W.empty())
        W.assign(Step.Events.size(), 1.0);
      size_t I = Rand.pickWeighted(W);
      Out.append(Table.internEvent(instantiate(Step.Events[I], Table)));
      break;
    }
    case ShapeStep::Kind::Repeat: {
      unsigned Reps =
          Step.MinReps + static_cast<unsigned>(Rand.nextBounded(
                             Step.MaxReps - Step.MinReps + 1));
      for (unsigned R = 0; R < Reps; ++R) {
        size_t I = Rand.nextIndex(Step.Events.size());
        Out.append(Table.internEvent(instantiate(Step.Events[I], Table)));
      }
      break;
    }
    }
  }
  return Out;
}

Trace WorkloadGenerator::applyError(const Trace &Correct,
                                    const ErrorMode &Mode, RNG &Rand) {
  (void)Rand;
  std::vector<EventId> Events(Correct.events());
  auto LastNamed = [&](const std::string &Name) -> size_t {
    std::optional<NameId> Id = Table.lookupName(Name);
    if (!Id)
      return Events.size();
    for (size_t I = Events.size(); I > 0; --I)
      if (Table.event(Events[I - 1]).Name == *Id)
        return I - 1;
    return Events.size();
  };

  switch (Mode.K) {
  case ErrorMode::Kind::DropNamed: {
    size_t I = LastNamed(Mode.A);
    if (I < Events.size())
      Events.erase(Events.begin() + static_cast<ptrdiff_t>(I));
    break;
  }
  case ErrorMode::Kind::DropFirst:
    if (!Events.empty())
      Events.erase(Events.begin());
    break;
  case ErrorMode::Kind::DuplicateNamed: {
    size_t I = LastNamed(Mode.A);
    if (I < Events.size())
      Events.push_back(Events[I]);
    break;
  }
  case ErrorMode::Kind::ReplaceNamed: {
    size_t I = LastNamed(Mode.A);
    if (I < Events.size()) {
      Event E = Table.event(Events[I]);
      E.Name = Table.internName(Mode.B);
      Events[I] = Table.internEvent(E);
    }
    break;
  }
  case ErrorMode::Kind::AppendNamed: {
    // Prefer copying an existing same-named event (preserves its argument
    // signature, producing an order-only violation); otherwise the seed's
    // arguments.
    size_t I = LastNamed(Mode.A);
    if (I < Events.size()) {
      Events.push_back(Events[I]);
    } else if (!Events.empty()) {
      Event E(Table.internName(Mode.A), Table.event(Events[0]).Args);
      Events.push_back(Table.internEvent(E));
    }
    break;
  }
  case ErrorMode::Kind::TruncateTail:
    if (!Events.empty())
      Events.pop_back();
    break;
  }
  return Trace(std::move(Events));
}

Trace WorkloadGenerator::generateScenario(RNG &Rand) {
  Trace Correct = generateCorrect(Rand);
  if (!Rand.nextBool(Model.ErrorRate) || Model.Errors.empty())
    return Correct;
  std::vector<double> Weights;
  for (const auto &[W, Mode] : Model.Errors)
    Weights.push_back(W);
  const ErrorMode &Mode = Model.Errors[Rand.pickWeighted(Weights)].second;
  return applyError(Correct, Mode, Rand);
}

Trace WorkloadGenerator::generateRun(RNG &Rand, ValueId &NextValue) {
  // Generate the scenarios, remapping slot values to fresh run values.
  std::vector<std::vector<EventId>> Pending;
  for (size_t I = 0; I < Model.ScenariosPerRun; ++I) {
    Trace S = generateScenario(Rand);
    // Remap: slot k -> NextValue + k (slots are small dense ints).
    ValueId MaxSlot = 0;
    for (EventId EI : S.events())
      for (ValueId V : Table.event(EI).Args)
        MaxSlot = std::max(MaxSlot, V);
    std::vector<EventId> Remapped;
    for (EventId EI : S.events()) {
      Event E = Table.event(EI);
      for (ValueId &V : E.Args)
        V += NextValue;
      Remapped.push_back(Table.internEvent(E));
    }
    NextValue += MaxSlot + 1;
    if (!Remapped.empty())
      Pending.push_back(std::move(Remapped));
  }

  // Noise: unrelated one-off events over fresh values; not seeds, so the
  // extractor must ignore them.
  for (size_t I = 0; I < Model.NoisePerRun; ++I) {
    std::string Name = "XNoise" + std::to_string(Rand.nextBounded(3));
    Event E(Table.internName(Name), {NextValue++});
    Pending.push_back({Table.internEvent(E)});
  }

  // Random interleave preserving each scenario's order.
  Trace Run;
  std::vector<size_t> Cursor(Pending.size(), 0);
  for (;;) {
    std::vector<size_t> Live;
    for (size_t I = 0; I < Pending.size(); ++I)
      if (Cursor[I] < Pending[I].size())
        Live.push_back(I);
    if (Live.empty())
      break;
    size_t Pick = Live[Rand.nextIndex(Live.size())];
    Run.append(Pending[Pick][Cursor[Pick]++]);
  }
  return Run;
}

TraceSet WorkloadGenerator::generateRuns(RNG &Rand) {
  ValueId NextValue = 0;
  std::vector<Trace> Runs;
  for (size_t I = 0; I < Model.NumRuns; ++I)
    Runs.push_back(generateRun(Rand, NextValue));
  TraceSet Out;
  Out.table() = Table;
  for (Trace &T : Runs)
    Out.add(std::move(T));
  return Out;
}

TraceSet WorkloadGenerator::generateScenarios(RNG &Rand, size_t Count) {
  std::vector<Trace> Scenarios;
  for (size_t I = 0; I < Count; ++I)
    Scenarios.push_back(generateScenario(Rand));
  TraceSet Out;
  Out.table() = Table;
  for (Trace &T : Scenarios)
    Out.add(T.canonicalized(Out.table()));
  return Out;
}
