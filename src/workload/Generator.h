//===- workload/Generator.h - Synthetic trace generation --------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a ProtocolModel into traces: single scenarios (correct or
/// mutated), and whole synthetic program runs — several scenarios over
/// fresh object values, randomly interleaved and mixed with unrelated
/// noise events — which the Strauss front end then slices back apart.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_WORKLOAD_GENERATOR_H
#define CABLE_WORKLOAD_GENERATOR_H

#include "support/RNG.h"
#include "trace/TraceSet.h"
#include "workload/Protocols.h"

namespace cable {

/// Generates scenarios and runs for one protocol.
class WorkloadGenerator {
public:
  /// \p Table receives all interned events.
  WorkloadGenerator(const ProtocolModel &Model, EventTable &Table)
      : Model(Model), Table(Table) {}

  /// One correct scenario with canonical values (slot k = value k).
  Trace generateCorrect(RNG &Rand);

  /// Applies \p Mode to \p Correct. May return the trace unchanged when
  /// the mutation's target event is absent.
  Trace applyError(const Trace &Correct, const ErrorMode &Mode, RNG &Rand);

  /// One scenario: correct with probability 1 - ErrorRate, else mutated by
  /// a weighted error mode.
  Trace generateScenario(RNG &Rand);

  /// A full program run: ScenariosPerRun scenarios over globally fresh
  /// values, randomly interleaved, plus NoisePerRun unrelated events.
  /// \p NextValue supplies fresh run-global values and is advanced.
  Trace generateRun(RNG &Rand, ValueId &NextValue);

  /// NumRuns full runs (the miner's training set). The TraceSet owns a
  /// copy of the table state at return time.
  TraceSet generateRuns(RNG &Rand);

  /// \p Count standalone scenarios, canonicalized — the shortcut used by
  /// benches that do not exercise the extraction front end.
  TraceSet generateScenarios(RNG &Rand, size_t Count);

private:
  const ProtocolModel &Model;
  EventTable &Table;
};

} // namespace cable

#endif // CABLE_WORKLOAD_GENERATOR_H
