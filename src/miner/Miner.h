//===- miner/Miner.h - The Strauss pipeline ---------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Strauss specification miner (Fig. 7): a front end that extracts
/// scenario traces from program runs and a back end that learns a
/// temporal-specification FA from them with sk-strings. Debugging a mined
/// specification (§2.2) re-runs only the back end on the scenario traces a
/// Cable user labeled `good`.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_MINER_MINER_H
#define CABLE_MINER_MINER_H

#include "cable/Session.h"
#include "learner/SkStrings.h"
#include "miner/ScenarioExtractor.h"

#include <string>

namespace cable {

/// A mined temporal specification.
struct Specification {
  std::string Name;
  Automaton FA;

  size_t numStates() const { return FA.numStates(); }
  size_t numTransitions() const { return FA.numTransitions(); }
};

/// Miner configuration: front-end and back-end knobs.
struct MinerOptions {
  ExtractorOptions Extract;
  SkStringsOptions Learn;
  /// Worker count for concept-lattice construction when a mined
  /// specification is debugged (0 = hardware concurrency, 1 = exact
  /// serial path). The lattice is identical at every setting.
  unsigned NumThreads = 0;
  /// Resource limits for lattice construction in debugSessionBudgeted
  /// (default: unlimited).
  Budget ResourceBudget;
  /// Passed through to SessionOptions::KeepGoing: degrade to a
  /// top/bottom-only lattice instead of failing when the context exceeds
  /// ResourceBudget.MaxContextCells.
  bool KeepGoing = false;
};

/// Result of a full mining run.
struct MiningResult {
  /// The scenario traces the front end extracted (with multiplicity).
  TraceSet Scenarios;
  /// The learned specification.
  Specification Spec;
};

/// The Strauss miner.
class Miner {
public:
  explicit Miner(MinerOptions Options) : Options(std::move(Options)) {}

  /// Front end only.
  TraceSet extract(const TraceSet &Runs) const {
    return extractScenarios(Runs, Options.Extract);
  }

  /// Back end only: learns an FA from \p Scenarios. This is the entry
  /// point re-run on `good`-labeled traces during debugging.
  Specification learn(const std::vector<Trace> &Scenarios,
                      const EventTable &Table, std::string Name) const;

  /// Full pipeline.
  MiningResult mine(const TraceSet &Runs, std::string Name) const;

  /// Opens a Cable debugging session over \p Scenarios clustered against
  /// \p ReferenceFA (§2.2: debugging a mined specification), building the
  /// lattice with Options.NumThreads workers.
  Session debugSession(TraceSet Scenarios, Automaton ReferenceFA) const;

  /// As debugSession, but honors Options.ResourceBudget / KeepGoing and
  /// reports recoverable errors (epsilon FA, oversized context) as a
  /// failed Status. A truncated-but-usable session is a success; check
  /// Session::truncated().
  StatusOr<Session> debugSessionBudgeted(TraceSet Scenarios,
                                         Automaton ReferenceFA) const;

  const MinerOptions &options() const { return Options; }

private:
  MinerOptions Options;
};

} // namespace cable

#endif // CABLE_MINER_MINER_H
