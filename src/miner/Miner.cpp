//===- miner/Miner.cpp - The Strauss pipeline ------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "miner/Miner.h"

using namespace cable;

Specification Miner::learn(const std::vector<Trace> &Scenarios,
                           const EventTable &Table, std::string Name) const {
  Specification Spec;
  Spec.Name = std::move(Name);
  Spec.FA = learnSkStringsFA(Scenarios, Table, Options.Learn);
  return Spec;
}

MiningResult Miner::mine(const TraceSet &Runs, std::string Name) const {
  MiningResult Result;
  Result.Scenarios = extract(Runs);
  Result.Spec = learn(Result.Scenarios.traces(), Result.Scenarios.table(),
                      std::move(Name));
  return Result;
}

Session Miner::debugSession(TraceSet Scenarios, Automaton ReferenceFA) const {
  return Session(std::move(Scenarios), std::move(ReferenceFA),
                 Options.NumThreads);
}

StatusOr<Session> Miner::debugSessionBudgeted(TraceSet Scenarios,
                                              Automaton ReferenceFA) const {
  SessionOptions SessionOpts;
  SessionOpts.NumThreads = Options.NumThreads;
  SessionOpts.ResourceBudget = Options.ResourceBudget;
  SessionOpts.KeepGoing = Options.KeepGoing;
  return Session::build(std::move(Scenarios), std::move(ReferenceFA),
                        SessionOpts);
}
