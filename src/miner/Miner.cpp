//===- miner/Miner.cpp - The Strauss pipeline ------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "miner/Miner.h"

#include "support/Metrics.h"
#include "support/TraceEvent.h"

using namespace cable;

Specification Miner::learn(const std::vector<Trace> &Scenarios,
                           const EventTable &Table, std::string Name) const {
  TraceSpan Span("miner-learn", static_cast<int64_t>(Scenarios.size()));
  Specification Spec;
  Spec.Name = std::move(Name);
  Spec.FA = learnSkStringsFA(Scenarios, Table, Options.Learn);
  Metrics::counter("miner.specs-learned").add();
  return Spec;
}

MiningResult Miner::mine(const TraceSet &Runs, std::string Name) const {
  MiningResult Result;
  {
    TraceSpan Span("miner-extract",
                   static_cast<int64_t>(Runs.traces().size()));
    Result.Scenarios = extract(Runs);
  }
  Metrics::counter("miner.scenarios-extracted")
      .add(Result.Scenarios.traces().size());
  Result.Spec = learn(Result.Scenarios.traces(), Result.Scenarios.table(),
                      std::move(Name));
  return Result;
}

Session Miner::debugSession(TraceSet Scenarios, Automaton ReferenceFA) const {
  return Session(std::move(Scenarios), std::move(ReferenceFA),
                 Options.NumThreads);
}

StatusOr<Session> Miner::debugSessionBudgeted(TraceSet Scenarios,
                                              Automaton ReferenceFA) const {
  SessionOptions SessionOpts;
  SessionOpts.NumThreads = Options.NumThreads;
  SessionOpts.ResourceBudget = Options.ResourceBudget;
  SessionOpts.KeepGoing = Options.KeepGoing;
  return Session::build(std::move(Scenarios), std::move(ReferenceFA),
                        SessionOpts);
}
