//===- miner/ScenarioExtractor.h - Strauss front end ------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front end of the Strauss pipeline (Fig. 7): extracts short scenario
/// traces from full program-run traces.
///
/// The paper's front end follows flow dependences in instrumented runs;
/// that machinery is external to this paper ([1]). What Cable consumes is
/// its *output* — short, per-object scenario traces — and this module
/// produces the same thing by object-identity slicing: each occurrence of
/// a *seed* event starts a scenario containing every event of the run that
/// mentions one of the scenario's values (optionally growing the value set
/// transitively through shared events). Extracted scenarios are value-
/// canonicalized, so identical protocols from different runs compare
/// equal.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_MINER_SCENARIOEXTRACTOR_H
#define CABLE_MINER_SCENARIOEXTRACTOR_H

#include "trace/TraceSet.h"

#include <string>
#include <vector>

namespace cable {

/// Controls scenario extraction.
struct ExtractorOptions {
  /// Event names whose occurrences open scenarios (e.g. "fopen", "popen").
  std::vector<std::string> SeedNames;

  /// If true, values reachable through shared events join the scenario's
  /// value set (closer to flow-dependence slicing); if false, only the
  /// seed's own values define the scenario.
  bool TransitiveValues = false;

  /// Scenarios longer than this are truncated (defense against runs where
  /// slicing degenerates).
  size_t MaxScenarioLength = 64;
};

/// Extracts scenario traces from \p Runs. The result owns a copy of the
/// event table; scenario events are canonicalized (v0, v1, ... by first
/// occurrence).
TraceSet extractScenarios(const TraceSet &Runs,
                          const ExtractorOptions &Options);

} // namespace cable

#endif // CABLE_MINER_SCENARIOEXTRACTOR_H
