//===- miner/ScenarioExtractor.cpp - Strauss front end ---------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "miner/ScenarioExtractor.h"

#include <unordered_set>

using namespace cable;

namespace {

/// True if \p E mentions any value in \p Values.
bool mentionsAny(const Event &E, const std::unordered_set<ValueId> &Values) {
  for (ValueId V : E.Args)
    if (Values.count(V))
      return true;
  return false;
}

} // namespace

TraceSet cable::extractScenarios(const TraceSet &Runs,
                                 const ExtractorOptions &Options) {
  std::vector<Trace> Raw;
  // Work over a private copy of the run table so scenario canonicalization
  // can intern rewritten events; the copy seeds the output table.
  EventTable Table = Runs.table();

  std::unordered_set<NameId> SeedIds;
  for (const std::string &Name : Options.SeedNames)
    if (std::optional<NameId> Id = Table.lookupName(Name))
      SeedIds.insert(*Id);

  for (const Trace &Run : Runs.traces()) {
    for (size_t SeedPos = 0; SeedPos < Run.size(); ++SeedPos) {
      const Event &Seed = Table.event(Run[SeedPos]);
      if (!SeedIds.count(Seed.Name) || Seed.Args.empty())
        continue;

      // The scenario's value set starts with the seed's values.
      std::unordered_set<ValueId> Values(Seed.Args.begin(), Seed.Args.end());
      if (Options.TransitiveValues) {
        // Fixpoint: any event sharing a value contributes its values.
        bool Changed = true;
        while (Changed) {
          Changed = false;
          for (EventId EI : Run.events()) {
            const Event &E = Table.event(EI);
            if (!mentionsAny(E, Values))
              continue;
            for (ValueId V : E.Args)
              if (Values.insert(V).second)
                Changed = true;
          }
        }
      }

      // The scenario is the subsequence of events touching the value set.
      Trace Scenario;
      for (EventId EI : Run.events()) {
        if (Scenario.size() >= Options.MaxScenarioLength)
          break;
        if (mentionsAny(Table.event(EI), Values))
          Scenario.append(EI);
      }

      // One scenario per *first* seed occurrence of an object: if an
      // earlier position already opened this scenario (same value set
      // origin), skip duplicates caused by later seed events on the same
      // object.
      bool DuplicateOfEarlier = false;
      for (size_t P = 0; P < SeedPos; ++P) {
        const Event &Prev = Table.event(Run[P]);
        if (SeedIds.count(Prev.Name) && mentionsAny(Prev, Values)) {
          DuplicateOfEarlier = true;
          break;
        }
      }
      if (DuplicateOfEarlier)
        continue;

      Raw.push_back(std::move(Scenario));
    }
  }

  // Canonicalize into the output's own table.
  TraceSet Canon;
  Canon.table() = Table;
  for (const Trace &T : Raw)
    Canon.add(T.canonicalized(Canon.table()));
  return Canon;
}
