//===- cable/Journal.h - Write-ahead session journal ------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durable labeling sessions (the paper's Step 2 is a long human session;
/// losing it to a crash is the worst failure mode this tool has). The
/// journal is a classic write-ahead log over *commands*: every mutating
/// REPL command is appended — CRC-framed, fsynced — *before* it is applied
/// to the Session, and a compacted snapshot of the full session state
/// (labels + undo history, Session::serializeSnapshot) is written
/// atomically every few commands. Recovery is deterministic replay:
/// restore the snapshot, then re-execute the journal tail through the
/// very same command dispatcher that produced it. Because every command
/// handler is deterministic (lattice construction is bit-identical at any
/// thread count, the oracle strategy carries no RNG), the recovered
/// session is bit-identical to the lost one up to the last durable record;
/// at most the single in-flight command is lost, and a torn final record
/// is skipped with a positioned warning, never an abort.
///
/// A journal directory holds:
///
///   journal.log    8-byte header (`CBLJ` + u32 version LE), then framed
///                  records: payload = u64 sequence number LE + the
///                  command text (support/AtomicFile.h framing).
///   snapshot.cable checksum-headered (`#%cable-snapshot v1 crc=...`)
///                  text: a `seq <S>` line, then the session snapshot.
///                  Replaced atomically; records with sequence <= S are
///                  dead and the log is truncated after a snapshot lands.
///   ACTIVE         marker created on open, removed on clean close; its
///                  presence on open means the previous process died.
///
/// Failpoints: `journal-append`, `journal-fsync`, `journal-snapshot`,
/// plus the `atomicfile-*` points under the snapshot write.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CABLE_JOURNAL_H
#define CABLE_CABLE_JOURNAL_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cable {

class Journal {
public:
  static constexpr uint32_t kFormatVersion = 1;

  /// What open() found on disk — everything recovery needs.
  struct Recovery {
    /// Session snapshot body (Session::loadSnapshot input); empty and
    /// HasSnapshot=false on a fresh directory.
    bool HasSnapshot = false;
    std::string SnapshotBody;
    uint64_t SnapshotSeq = 0;
    /// Journal-tail commands with sequence > SnapshotSeq, oldest first.
    std::vector<std::string> Commands;
    /// True when the previous session did not close cleanly (ACTIVE
    /// marker present) — recovery is resuming a crashed session rather
    /// than a quit one.
    bool UncleanShutdown = false;
    /// Ok, or a Warning diagnostic describing a torn final record that
    /// was skipped (positioned by record number, file = journal.log).
    Status TornTail;
  };

  Journal() = default;
  ~Journal();
  Journal(Journal &&Other) noexcept;
  Journal &operator=(Journal &&Other) noexcept;
  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// Opens (creating if needed) the journal in \p Dir, fills \p Out with
  /// the recovered state, truncates any torn tail so future appends stay
  /// scannable, positions the sequence counter after the last durable
  /// record, and drops the ACTIVE marker. Fails with io-error on an
  /// unwritable directory and parse-error on a foreign/corrupt journal
  /// or snapshot file (a corrupt *tail* is recovered from; a corrupt
  /// snapshot is not silently ignored — the user is told).
  static StatusOr<Journal> open(const std::string &Dir, Recovery &Out);

  /// When to fsync appended records. EveryRecord (the interactive
  /// default) makes each command durable against power loss before it is
  /// applied: at most the in-flight command can be lost. Batched defers
  /// the fsync to flush()/snapshot()/closeClean(): a *process* crash
  /// still loses nothing (the kernel already has every write), only an
  /// OS crash or power cut can drop the un-flushed tail — the right
  /// trade for scripted sessions, where the script file itself re-seeds
  /// any lost tail deterministically on the next run.
  enum class SyncPolicy { EveryRecord, Batched };

  void setSyncPolicy(SyncPolicy P) { Policy = P; }
  SyncPolicy syncPolicy() const { return Policy; }

  /// WAL append: frames \p Command with the next sequence number and
  /// writes it, fsyncing under SyncPolicy::EveryRecord. Call before
  /// applying the command; on failure the caller must not apply
  /// (durability can no longer be promised).
  Status append(std::string_view Command);

  /// Fsyncs any appends Batched mode has buffered; a no-op when nothing
  /// is pending.
  Status flush();

  /// Writes \p SessionBody as the new snapshot (atomic replace), then
  /// truncates the log — the compaction step. On failure the old
  /// snapshot and the full log remain valid; skipping a snapshot only
  /// costs replay time.
  Status snapshot(std::string_view SessionBody);

  /// Removes the ACTIVE marker and closes the log. The caller should
  /// snapshot() first so the next open replays nothing.
  Status closeClean();

  /// Sequence number of the last appended record (0 = none yet).
  uint64_t lastSeq() const { return Seq; }

  /// The log's file descriptor, for async-signal-safe fsync in a signal
  /// handler; -1 when closed.
  int fd() const { return Fd; }

  bool isOpen() const { return Fd >= 0; }

  static std::string logPath(const std::string &Dir);
  static std::string snapshotPath(const std::string &Dir);
  static std::string markerPath(const std::string &Dir);

private:
  std::string Dir;
  int Fd = -1;
  uint64_t Seq = 0;     ///< Last appended (or recovered) sequence number.
  uint64_t SnapSeq = 0; ///< Sequence the on-disk snapshot covers.
  SyncPolicy Policy = SyncPolicy::EveryRecord;
  bool Dirty = false;   ///< Batched appends not yet fsynced.
};

} // namespace cable

#endif // CABLE_CABLE_JOURNAL_H
