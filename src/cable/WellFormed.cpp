//===- cable/WellFormed.cpp - Lattice well-formedness (§4.3) ---------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cable/WellFormed.h"

#include <algorithm>
#include <cassert>

using namespace cable;

bool ReferenceLabeling::uniform(const BitVector &Objects) const {
  std::optional<LabelId> Seen;
  for (size_t Obj : Objects) {
    assert(Obj < Target.size() && "object out of range");
    if (!Seen)
      Seen = Target[Obj];
    else if (*Seen != Target[Obj])
      return false;
  }
  return true;
}

LabelId ReferenceLabeling::sharedLabel(const BitVector &Objects) const {
  size_t First = Objects.findFirst();
  assert(First != BitVector::npos && "sharedLabel of an empty set");
  assert(uniform(Objects) && "sharedLabel of a mixed set");
  return Target[First];
}

WellFormedness cable::checkWellFormed(const Session &S,
                                      const ReferenceLabeling &Target) {
  const ConceptLattice &L = S.lattice();
  std::vector<bool> WF(L.size(), false);

  // Evaluate children before parents: reverse topological (top-down) order.
  std::vector<ConceptLattice::NodeId> Order = L.topDownOrder();
  std::reverse(Order.begin(), Order.end());

  WellFormedness Out;
  for (ConceptLattice::NodeId Id : Order) {
    if (Target.uniform(L.node(Id).Extent)) {
      WF[Id] = true;
      continue;
    }
    bool ChildrenOk = true;
    for (ConceptLattice::NodeId C : L.children(Id))
      if (!WF[C]) {
        ChildrenOk = false;
        break;
      }
    WF[Id] = ChildrenOk && Target.uniform(S.ownObjects(Id));
    if (!WF[Id])
      Out.IllFormed.push_back(Id);
  }
  Out.LatticeWellFormed = Out.IllFormed.empty();
  return Out;
}

ReferenceLabeling
cable::makeReferenceLabeling(Session &S,
                             const std::vector<std::string> &Names) {
  assert(Names.size() == S.numObjects() && "one name per object required");
  ReferenceLabeling Out;
  Out.Target.reserve(Names.size());
  for (const std::string &Name : Names)
    Out.Target.push_back(S.internLabel(Name));
  return Out;
}
