//===- cable/Session.h - A Cable debugging session --------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Session is one run of the paper's method over a set of traces and a
/// reference FA:
///
///  Step 1b/1c: the context has one object per class of identical traces
///  and one attribute per reference-FA transition, related by the executed-
///  transition relation R; the concept lattice is built with the parallel
///  batch builder (lectic-canonical, identical at every thread count;
///  GodinBuilder remains available for incremental maintenance and as a
///  differential oracle).
///
///  Step 2: the user partitions traces into labels (`good`, `bad`, or
///  domain-specific labels like `good_fopen`) by labeling whole concepts.
///  The session tracks each concept's state — Unlabeled, PartlyLabeled,
///  FullyLabeled (rendered green/yellow/red, §4.1) — and implements the
///  `Label traces` command's selection semantics and the three summary
///  views (Show FA, Show transitions, Show traces) plus Focus sub-sessions.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CABLE_SESSION_H
#define CABLE_CABLE_SESSION_H

#include "concepts/Context.h"
#include "concepts/Lattice.h"
#include "fa/Automaton.h"
#include "learner/SkStrings.h"
#include "support/Budget.h"
#include "support/Status.h"
#include "trace/TraceSet.h"

#include <chrono>
#include <optional>
#include <string>
#include <vector>

namespace cable {

/// Interned label (e.g. "good", "bad", "good_fopen").
using LabelId = uint32_t;

/// Which traces of a concept an operation applies to (the choice Cable
/// offers when some traces are already labeled).
enum class TraceSelect {
  All,       ///< Every trace in the concept.
  Unlabeled, ///< Only traces with no label yet.
  WithLabel, ///< Only traces currently carrying a specific label.
};

/// Labeling state of one concept (§4.1).
enum class ConceptState {
  Unlabeled,     ///< Has unlabeled traces and no labeled ones (green).
  PartlyLabeled, ///< Some labeled, some unlabeled (yellow).
  FullyLabeled,  ///< No unlabeled traces; empty concepts qualify (red).
};

struct FocusSession;

/// Options for Session::build.
struct SessionOptions {
  /// Lattice-builder workers (0 = hardware concurrency, 1 = the exact
  /// serial NextClosure path; the lattice is bit-for-bit identical either
  /// way).
  unsigned NumThreads = 0;

  /// Resource limits for lattice construction. On exhaustion the session
  /// still builds, with truncated() set and buildStatus() explaining why;
  /// the §5 identical-trace baseline clustering (baselineClasses()) is
  /// always complete regardless.
  Budget ResourceBudget;

  /// When the context itself exceeds Budget::MaxContextCells: true builds
  /// a degenerate (top/bottom only) truncated lattice so baseline
  /// clustering remains usable; false makes build() fail outright.
  bool KeepGoing = false;

  /// Shard-worker processes for lattice construction (0 = in-process).
  /// When set, construction runs under ShardedBuilder's crash-containing
  /// supervisor; the lattice is bit-for-bit identical either way, and the
  /// build degrades in-process if forking is unavailable or the retry
  /// budget is exhausted. Focus sub-sessions always build in-process
  /// (their contexts are small by construction).
  unsigned ShardWorkers = 0;

  /// Per-shard deadline before a worker is declared wedged and its block
  /// reassigned (ShardedBuilder's ShardOptions::ShardTimeout).
  std::chrono::milliseconds ShardTimeout{30000};

  /// Retries per block beyond the first attempt before it is computed
  /// inline in the supervisor.
  unsigned ShardRetries = 3;

  /// Directory of the content-addressed lattice artifact store; "" (the
  /// default) disables caching. The key is context hash x builder x
  /// budget fingerprint — deliberately independent of thread count,
  /// shard-worker count, and simd kernel level, all of which produce
  /// bit-identical lattices. Every cache failure (corrupt artifact, I/O
  /// error, lock timeout) degrades to a normal build and is reported via
  /// cacheDiagnostics(); a poisoned cache costs time, never correctness.
  /// Builds under a wall-clock budget bypass the cache entirely: deadline
  /// truncation is timing-dependent, so the result is not a pure function
  /// of the key.
  std::string CacheDir;

  /// Verification depth for cache loads: Full (default) checks the body
  /// CRC as well as the header and structure; Header skips the body CRC
  /// (structural bounds are always enforced).
  LatticeVerify CacheVerifyMode = LatticeVerify::Full;

  /// Bound on waiting for a concurrent process building the same key
  /// (stale-lock breaking: after this, build inline without publishing).
  std::chrono::milliseconds CacheLockTimeout{60000};
};

/// One Cable debugging session.
class Session {
public:
  using NodeId = ConceptLattice::NodeId;

  /// Builds the session: dedups \p Traces into identical-trace classes,
  /// simulates each representative on \p ReferenceFA to obtain its
  /// attribute row, and constructs the concept lattice with the parallel
  /// batch builder on \p NumThreads workers (0 = hardware concurrency,
  /// 1 = the exact serial NextClosure path; the lattice is bit-for-bit
  /// identical either way). \p ReferenceFA must be epsilon-free. Traces
  /// the FA rejects get empty attribute rows and are reported by
  /// rejectedObjects().
  Session(TraceSet Traces, Automaton ReferenceFA, unsigned NumThreads = 0);

  /// Budget-aware construction: as the constructor, but recoverable
  /// errors (an epsilon FA, a context over MaxContextCells without
  /// KeepGoing) come back as a failed Status instead of aborting, and
  /// lattice construction honors Options.ResourceBudget — on exhaustion
  /// the session is still returned with truncated() set, a partial (but
  /// well-formed) lattice, and the complete baseline clustering.
  static StatusOr<Session> build(TraceSet Traces, Automaton ReferenceFA,
                                 const SessionOptions &Options = {});

  /// The thread count this session was built with (inherited by Focus
  /// sub-sessions).
  unsigned numThreads() const { return NumThreads; }

  /// True when lattice construction stopped early on a budget limit; the
  /// lattice is then a valid sub-lattice (lectic prefix plus top/bottom)
  /// rather than the full concept set.
  bool truncated() const { return Truncated; }

  /// Ok, or the diagnostic explaining why the lattice was truncated.
  const Status &buildStatus() const { return BuildSt; }

  /// True when the lattice was loaded from the artifact store instead of
  /// built (the warm-start path).
  bool cacheHit() const { return CacheHit; }

  /// Non-fatal cache problems encountered during build(): a quarantined
  /// corrupt artifact, an I/O error, a lock timeout. The build itself
  /// succeeded regardless (graceful degradation); tools surface these as
  /// warnings.
  const std::vector<Status> &cacheDiagnostics() const { return CacheDiags; }

  /// The §5 identical-trace-class baseline clustering — always complete,
  /// even when the lattice is truncated (graceful degradation target).
  const TraceClasses &baselineClasses() const { return Classes; }

  // -- Structure ----------------------------------------------------------

  const ConceptLattice &lattice() const { return Lattice; }
  const Context &context() const { return Ctx; }
  const Automaton &referenceFA() const { return RefFA; }
  const EventTable &table() const { return Traces.table(); }

  /// Mutable table access, for interning focus-FA events into the
  /// session's vocabulary.
  EventTable &table() { return Traces.table(); }
  const TraceSet &allTraces() const { return Traces; }

  /// Objects are classes of identical traces (§5: the lattice is built
  /// from representatives).
  size_t numObjects() const { return Classes.numClasses(); }
  const Trace &object(size_t Obj) const {
    return Classes.Representatives[Obj];
  }
  uint32_t multiplicity(size_t Obj) const { return Classes.Multiplicity[Obj]; }

  /// Object indices whose trace the reference FA rejects (their attribute
  /// rows are empty — the paper expects a reference FA that recognizes at
  /// least all the traces, so a nonempty result deserves a diagnostic).
  const std::vector<size_t> &rejectedObjects() const { return Rejected; }

  /// Extent of the concept minus the extents of all its children — the
  /// traces that become labelable only at this concept.
  BitVector ownObjects(NodeId Id) const;

  // -- Labels --------------------------------------------------------------

  /// Interns \p Name, returning its id.
  LabelId internLabel(std::string_view Name);
  size_t numLabels() const { return LabelNames.size(); }
  const std::string &labelName(LabelId Id) const { return LabelNames[Id]; }

  /// Current label of an object, if any.
  std::optional<LabelId> labelOf(size_t Obj) const { return Labels[Obj]; }

  /// Clears every label (used by strategy measurement to rerun the same
  /// session).
  void clearLabels();

  /// The `Label traces` command: gives \p NewLabel to the selected traces
  /// of concept \p Id. \p From names the source label when \p Select is
  /// WithLabel. Returns the number of objects whose label changed or was
  /// set. A trace has at most one label; relabeling replaces.
  size_t labelTraces(NodeId Id, TraceSelect Select, LabelId NewLabel,
                     std::optional<LabelId> From = std::nullopt);

  /// Labels a single object directly — the §4.3 fallback for concepts that
  /// are not well-formed ("label the traces in those concepts by hand").
  void setLabel(size_t Obj, LabelId L);

  /// Reverts the most recent labeling operation (one labelTraces, setLabel,
  /// mergeBack, or loadLabels call). Returns false when there is nothing
  /// to undo. The history is discarded by clearLabels().
  bool undo();

  /// Number of operations currently undoable.
  size_t undoDepth() const { return UndoStack.size(); }

  /// Labeling state of \p Id (empty concepts are FullyLabeled).
  ConceptState stateOf(NodeId Id) const;

  /// True once every object has a label.
  bool allLabeled() const;

  /// Objects of \p Id selected by \p Select (+ \p From for WithLabel).
  BitVector selectObjects(NodeId Id, TraceSelect Select,
                          std::optional<LabelId> From = std::nullopt) const;

  /// Objects with no label, in the whole session.
  BitVector unlabeledObjects() const;

  /// Objects currently carrying \p L, in the whole session.
  BitVector objectsWithLabel(LabelId L) const;

  // -- Summaries (§4.1) ----------------------------------------------------

  /// Show FA: sk-strings summary of the selected traces of \p Id.
  Automaton showFA(NodeId Id, TraceSelect Select,
                   std::optional<LabelId> From = std::nullopt,
                   const SkStringsOptions &Options = {}) const;

  /// Show transitions: the concept's intent as transition ids.
  std::vector<TransitionId> showTransitions(NodeId Id) const;

  /// Show traces: the selected object indices of \p Id.
  std::vector<size_t> showTraces(NodeId Id, TraceSelect Select,
                                 std::optional<LabelId> From
                                 = std::nullopt) const;

  // -- Focus (§4.1) ---------------------------------------------------------

  /// Starts a Focus sub-session on the traces of \p Id using \p FocusFA.
  FocusSession focus(NodeId Id, Automaton FocusFA) const;

  /// Ends a Focus sub-session: copies every label assigned in \p F back
  /// onto the corresponding parent objects (labels merge by name).
  void mergeBack(const FocusSession &F);

  // -- Persistence ----------------------------------------------------------

  /// Serializes the current labeling, one line per labeled trace:
  /// `<label> <trace>`. Unlabeled traces are omitted.
  std::string serializeLabels() const;

  /// Restores labels from serializeLabels output. Traces are matched by
  /// canonical content, so labels survive re-clustering with a different
  /// reference FA or a different trace order. Lines naming traces not in
  /// this session are counted in \p NumUnmatched (may be null). Returns
  /// false and sets \p ErrorMsg on parse errors.
  bool loadLabels(std::string_view Text, std::string &ErrorMsg,
                  size_t *NumUnmatched = nullptr);

  /// Serializes the complete mutable session state for the journal's
  /// compacted snapshots: the label intern order, every per-object label
  /// (by object index — snapshots are tied to this exact clustering,
  /// unlike the content-matched serializeLabels format), and the full
  /// undo history, so a restored session undoes exactly like the
  /// original. Line-oriented text; see docs/FORMATS.md.
  std::string serializeSnapshot() const;

  /// Restores serializeSnapshot state, replacing labels and undo history.
  /// Fails with a positioned parse-error Diagnostic on malformed input,
  /// and with invalid-argument when the snapshot's object count does not
  /// match this session (journal directory reused with different traces
  /// or reference FA). The session is unchanged on failure.
  Status loadSnapshot(std::string_view Body);

  // -- Rendering -----------------------------------------------------------

  /// DOT rendering of the lattice; nodes colored by state (green / yellow
  /// / red) as the paper's UI does, labeled with object count and
  /// similarity.
  std::string renderDot(std::string_view Name) const;

  /// One-line description of a concept for the CLI.
  std::string describeConcept(NodeId Id) const;

private:
  /// For build(): members are filled in by init().
  Session() = default;

  /// Shared construction tail; returns a failed Status only for the
  /// recoverable errors documented on build().
  Status init(const SessionOptions &Options);

  TraceSet Traces;
  TraceClasses Classes;
  Automaton RefFA;
  Context Ctx;
  ConceptLattice Lattice;
  std::vector<size_t> Rejected;
  unsigned NumThreads = 0;
  bool Truncated = false;
  bool CacheHit = false;
  Status BuildSt;
  std::vector<Status> CacheDiags;

  std::vector<std::optional<LabelId>> Labels;
  std::vector<std::string> LabelNames;

  /// Undo history: per operation, the objects it changed with their prior
  /// labels.
  using UndoRecord = std::vector<std::pair<size_t, std::optional<LabelId>>>;
  std::vector<UndoRecord> UndoStack;
};

/// A focused sub-session over one concept's traces, clustered with a
/// different FA (§4.1 Focus). Labels assigned in Sub are merged back into
/// the parent with Session::mergeBack().
struct FocusSession {
  Session Sub;
  /// ParentObjects[i] = parent object index of Sub object i.
  std::vector<size_t> ParentObjects;
};

} // namespace cable

#endif // CABLE_CABLE_SESSION_H
