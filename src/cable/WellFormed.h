//===- cable/WellFormed.h - Lattice well-formedness (§4.3) ------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's well-formedness condition (§4.3). Because Cable only labels
/// concepts en masse, a lattice may make some target labelings unreachable.
/// A concept c is well-formed for a labeling iff
///
///   1. every trace in c has the same target label, or
///   2. all children of c are well-formed and every trace in c that is in
///      no child of c has the same target label.
///
/// A lattice is well-formed iff every concept is. When it is, a sequence
/// of `Label traces` commands (bottom-up) reaches the target labeling;
/// when it is not, the user must Focus with a different FA or fall back to
/// hand-labeling the mixed concepts.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CABLE_WELLFORMED_H
#define CABLE_CABLE_WELLFORMED_H

#include "cable/Session.h"

#include <vector>

namespace cable {

/// A target labeling: the label every object should end with. Used both
/// as the ground truth for strategy measurement and for well-formedness.
struct ReferenceLabeling {
  /// Target[Obj] = desired label of object Obj.
  std::vector<LabelId> Target;

  /// True if all objects in \p Objects share one target label (vacuously
  /// true for the empty set).
  bool uniform(const BitVector &Objects) const;

  /// The shared target label of \p Objects; requires uniform() and a
  /// nonempty set.
  LabelId sharedLabel(const BitVector &Objects) const;
};

/// Result of the well-formedness analysis.
struct WellFormedness {
  bool LatticeWellFormed = false;
  /// Concepts violating the recursive condition.
  std::vector<ConceptLattice::NodeId> IllFormed;
};

/// Checks §4.3's condition for \p Target over \p S's lattice.
WellFormedness checkWellFormed(const Session &S,
                               const ReferenceLabeling &Target);

/// Builds a ReferenceLabeling from per-object label names, interning the
/// names into \p S so the ids are valid for that session.
ReferenceLabeling makeReferenceLabeling(Session &S,
                                        const std::vector<std::string> &Names);

} // namespace cable

#endif // CABLE_CABLE_WELLFORMED_H
