//===- cable/Session.cpp - A Cable debugging session -----------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"

#include "concepts/BuildResult.h"
#include "concepts/ParallelBuilder.h"
#include "concepts/ShardedBuilder.h"
#include "support/ArtifactStore.h"
#include "support/Dot.h"
#include "support/Failpoint.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/StringUtil.h"
#include "support/TraceEvent.h"

#include <optional>
#include <unordered_map>

#include <cassert>

using namespace cable;

namespace {

/// The builder-family half of the cache key. All batch paths (serial
/// NextClosure, ParallelBuilder, ShardedBuilder) enumerate the same
/// canonical lectic order and are bit-for-bit interchangeable, so they
/// share one id and one artifact.
constexpr const char *kLatticeBuilderId = "nextclosure";

/// The budget half of the cache key. Only deterministic caps participate:
/// a MaxConcepts-truncated lattice is an exact lectic prefix, so the cap
/// must distinguish artifacts; wall-clock deadlines make the result
/// timing-dependent and are handled by bypassing the cache entirely.
std::string budgetFingerprint(const Budget &B) {
  std::string FP;
  if (B.MaxConcepts)
    FP += "mc" + std::to_string(*B.MaxConcepts);
  if (B.MaxContextCells) {
    if (!FP.empty())
      FP += "-";
    FP += "cc" + std::to_string(*B.MaxContextCells);
  }
  return FP.empty() ? "full" : FP;
}

} // namespace

Session::Session(TraceSet TracesIn, Automaton ReferenceFA,
                 unsigned NumThreadsIn) {
  Traces = std::move(TracesIn);
  RefFA = std::move(ReferenceFA);
  assert(!RefFA.hasEpsilons() &&
         "reference FA must be epsilon-free (apply withoutEpsilons)");
  SessionOptions Options;
  Options.NumThreads = NumThreadsIn;
  // Unlimited budget: init() cannot fail (the epsilon case asserted above
  // is its only other error).
  Status S = init(Options);
  (void)S;
  assert(S.isOk() && "unbudgeted session construction cannot fail");
}

StatusOr<Session> Session::build(TraceSet Traces, Automaton ReferenceFA,
                                 const SessionOptions &Options) {
  Session S;
  S.Traces = std::move(Traces);
  S.RefFA = std::move(ReferenceFA);
  if (S.RefFA.hasEpsilons())
    return Status::error(
        ErrorCode::InvalidArgument,
        "reference FA has epsilon transitions; apply withoutEpsilons() "
        "before building a session");
  if (Status InitSt = S.init(Options); !InitSt.isOk())
    return InitSt;
  return S;
}

Status Session::init(const SessionOptions &Options) {
  TraceSpan Span("session-init");
  NumThreads = Options.NumThreads;
  Classes = Traces.computeClasses();

  // Step 1b: one object per identical-trace class; one attribute per
  // reference-FA transition; R = executed-on-an-accepting-run.
  Ctx = Context(Classes.numClasses(), RefFA.numTransitions());
  for (size_t Obj = 0; Obj < Classes.numClasses(); ++Obj) {
    BitVector Row =
        RefFA.executedTransitions(Classes.Representatives[Obj], table());
    if (Row.none() && !Classes.Representatives[Obj].empty())
      Rejected.push_back(Obj);
    for (size_t A : Row)
      Ctx.relate(Obj, A);
  }

  // A context over the cell budget is an outright error unless the caller
  // asked to keep going, in which case the budgeted builder degrades to a
  // top/bottom-only lattice and the baseline clustering carries the day.
  if (Status CellsSt = checkContextCells(Ctx, Options.ResourceBudget);
      !CellsSt.isOk() && !Options.KeepGoing)
    return CellsSt;

  // Content-addressed lattice cache. The key never mentions threads,
  // workers, or kernel levels (they are bit-for-bit irrelevant), and a
  // wall-clock budget disables caching outright — a deadline-truncated
  // lattice is not a pure function of the key.
  std::optional<ArtifactStore> Store;
  LatticeArtifactMeta Meta;
  std::string CacheKey;
  if (!Options.CacheDir.empty() && !Options.ResourceBudget.TimeLimit) {
    ArtifactStore Candidate(Options.CacheDir);
    if (Status S = Candidate.prepare(); S.isOk()) {
      Store.emplace(std::move(Candidate));
      Meta.ContextHash = Ctx.contentHash();
      Meta.Builder = kLatticeBuilderId;
      Meta.Budget = budgetFingerprint(Options.ResourceBudget);
      Meta.NumObjects = Ctx.numObjects();
      Meta.NumAttributes = Ctx.numAttributes();
      CacheKey = Meta.ContextHash + "." + Meta.Builder + "." + Meta.Budget;
    } else {
      CABLE_LOG_WARN("cache", "cache-prepare-failed",
                     "cache directory unusable; building uncached",
                     {Log::str("error", S.message())});
      CacheDiags.push_back(std::move(S));
    }
  }
  // Attempts a verified load; any failure other than "not there yet"
  // (corruption -> quarantined by the store, I/O trouble) is recorded and
  // degrades to a normal build.
  auto TryLoad = [&]() -> bool {
    bool Loaded = false;
    Status S = Store->load(CacheKey, [&](std::string_view Bytes) -> Status {
      StatusOr<ConceptLattice> L = ConceptLattice::deserialize(
          Bytes, Meta, Options.CacheVerifyMode, Store->artifactPath(CacheKey));
      if (!L.isOk())
        return L.status();
      Lattice = std::move(*L);
      Loaded = true;
      return Status::ok();
    });
    if (!S.isOk() && S.code() != ErrorCode::NotFound) {
      CABLE_LOG_WARN("cache", "cache-load-failed",
                     "cached artifact unusable; degrading to a build",
                     {Log::str("key", CacheKey),
                      Log::str("error", S.message())});
      CacheDiags.push_back(std::move(S));
    }
    return Loaded;
  };

  ArtifactStore::KeyLock Lock;
  if (Store) {
    TraceSpan CacheSpan("cache-lookup");
    CacheHit = TryLoad();
    if (!CacheHit) {
      // Single-flight: whoever holds the key lock builds and publishes;
      // everyone else waits, re-loads, and hits. A timed-out wait (a
      // wedged holder) just means we build inline and skip publishing.
      Lock = Store->lockKey(CacheKey, Options.CacheLockTimeout);
      if (Lock.held())
        CacheHit = TryLoad();
    }
    Metrics::counter(CacheHit ? "cache.hits" : "cache.misses").add();
    CABLE_LOG_INFO("cache", CacheHit ? "cache-hit" : "cache-miss",
                   CacheHit ? "lattice served from the artifact store"
                            : "no usable artifact; building",
                   {Log::str("key", CacheKey)});
  }
  if (CacheHit) {
    Truncated = false;
    BuildSt = Status::ok();
    Metrics::counter("session.builds").add();
    Labels.assign(Classes.numClasses(), std::nullopt);
    return Status::ok();
  }

  // Step 1c: concept analysis. The parallel batch builder is the default
  // path; its lattice is bit-for-bit identical at every thread count, as
  // is the truncation point when the budget runs out.
  BudgetMeter Meter(Options.ResourceBudget);
  LatticeBuildResult R;
  {
    TraceSpan BuildSpan("lattice-build",
                        static_cast<int64_t>(Ctx.numObjects()));
    if (Options.ShardWorkers > 0) {
      // Multi-process path: crash-isolated shard workers under a
      // supervisor; identical lattice, with clean degradation back to the
      // in-process builder on fork failure or retry exhaustion.
      ShardOptions SOpts;
      SOpts.NumWorkers = Options.ShardWorkers;
      SOpts.ShardTimeout = Options.ShardTimeout;
      SOpts.MaxRetries = Options.ShardRetries;
      SOpts.NumThreads = NumThreads;
      // Counted even when the build degrades in-process: the session
      // asked for sharding, and run reports distinguish asked-for from
      // achieved via the shard.degraded-builds counter.
      Metrics::counter("session.sharded-builds").add();
      R = ShardedBuilder::buildLatticeBudgeted(Ctx, Meter, SOpts);
    } else {
      R = ParallelBuilder::buildLatticeBudgeted(Ctx, Meter, NumThreads);
    }
  }
  Metrics::counter("session.builds").add();
  if (R.Truncated) {
    Metrics::counter("session.truncated-builds").add();
    CABLE_LOG_WARN("session", "build-truncated",
                   "resource budget truncated the lattice",
                   {Log::num("concepts",
                             static_cast<int64_t>(R.Lattice.size()))});
  }
  if (Options.ResourceBudget.TimeLimit) {
    int64_t Headroom = static_cast<int64_t>(
                           Options.ResourceBudget.TimeLimit->count()) -
                       static_cast<int64_t>(Meter.elapsed().count());
    Metrics::gauge("budget.headroom-ms").set(Headroom > 0 ? Headroom : 0);
  }
  Lattice = std::move(R.Lattice);
  Truncated = R.Truncated;
  BuildSt = std::move(R.BuildStatus);

  // Publish the artifact, but only when this process won the key lock
  // (otherwise a peer is publishing, or the wait for one timed out) and
  // the lattice is complete — truncated prefixes under a concept cap
  // would be correct to cache, but deadline-free complete builds are the
  // only artifacts the warm path should ever trust blindly after verify.
  if (Store && Lock.held() && !Truncated && BuildSt.isOk()) {
    Status SS = Failpoint::hit("cache-serialize");
    if (SS.isOk()) {
      TraceSpan StoreSpan("cache-store");
      Meta.Truncated = false;
      SS = Store->store(CacheKey, Lattice.serialize(Meta));
    }
    if (!SS.isOk()) {
      CABLE_LOG_WARN("cache", "cache-store-failed",
                     "artifact publish failed; result still served",
                     {Log::str("key", CacheKey),
                      Log::str("error", SS.message())});
      CacheDiags.push_back(std::move(SS));
    }
  }

  Labels.assign(Classes.numClasses(), std::nullopt);
  return Status::ok();
}

BitVector Session::ownObjects(NodeId Id) const {
  BitVector Own = Lattice.node(Id).Extent;
  for (NodeId C : Lattice.children(Id))
    Own.andNot(Lattice.node(C).Extent);
  return Own;
}

LabelId Session::internLabel(std::string_view Name) {
  for (LabelId Id = 0; Id < LabelNames.size(); ++Id)
    if (LabelNames[Id] == Name)
      return Id;
  LabelNames.emplace_back(Name);
  return static_cast<LabelId>(LabelNames.size() - 1);
}

void Session::clearLabels() {
  Labels.assign(Classes.numClasses(), std::nullopt);
  UndoStack.clear();
}

BitVector Session::selectObjects(NodeId Id, TraceSelect Select,
                                 std::optional<LabelId> From) const {
  const BitVector &Extent = Lattice.node(Id).Extent;
  BitVector Out(Extent.size());
  for (size_t Obj : Extent) {
    switch (Select) {
    case TraceSelect::All:
      Out.set(Obj);
      break;
    case TraceSelect::Unlabeled:
      if (!Labels[Obj])
        Out.set(Obj);
      break;
    case TraceSelect::WithLabel:
      assert(From && "WithLabel requires a source label");
      if (Labels[Obj] && *Labels[Obj] == *From)
        Out.set(Obj);
      break;
    }
  }
  return Out;
}

size_t Session::labelTraces(NodeId Id, TraceSelect Select, LabelId NewLabel,
                            std::optional<LabelId> From) {
  assert(NewLabel < LabelNames.size() && "label not interned");
  BitVector Targets = selectObjects(Id, Select, From);
  UndoRecord Record;
  size_t Changed = 0;
  for (size_t Obj : Targets) {
    if (!Labels[Obj] || *Labels[Obj] != NewLabel) {
      Record.emplace_back(Obj, Labels[Obj]);
      Labels[Obj] = NewLabel;
      ++Changed;
    }
  }
  UndoStack.push_back(std::move(Record));
  return Changed;
}

void Session::setLabel(size_t Obj, LabelId L) {
  assert(Obj < Labels.size() && L < LabelNames.size() && "bad label/object");
  UndoStack.push_back({{Obj, Labels[Obj]}});
  Labels[Obj] = L;
}

bool Session::undo() {
  if (UndoStack.empty())
    return false;
  for (const auto &[Obj, Prior] : UndoStack.back())
    Labels[Obj] = Prior;
  UndoStack.pop_back();
  return true;
}

ConceptState Session::stateOf(NodeId Id) const {
  const BitVector &Extent = Lattice.node(Id).Extent;
  bool AnyLabeled = false, AnyUnlabeled = false;
  for (size_t Obj : Extent) {
    if (Labels[Obj])
      AnyLabeled = true;
    else
      AnyUnlabeled = true;
    if (AnyLabeled && AnyUnlabeled)
      return ConceptState::PartlyLabeled;
  }
  if (AnyUnlabeled)
    return ConceptState::Unlabeled;
  return ConceptState::FullyLabeled; // Includes the empty concept.
}

bool Session::allLabeled() const {
  for (const std::optional<LabelId> &L : Labels)
    if (!L)
      return false;
  return true;
}

BitVector Session::unlabeledObjects() const {
  BitVector Out(Labels.size());
  for (size_t Obj = 0; Obj < Labels.size(); ++Obj)
    if (!Labels[Obj])
      Out.set(Obj);
  return Out;
}

BitVector Session::objectsWithLabel(LabelId L) const {
  BitVector Out(Labels.size());
  for (size_t Obj = 0; Obj < Labels.size(); ++Obj)
    if (Labels[Obj] && *Labels[Obj] == L)
      Out.set(Obj);
  return Out;
}

Automaton Session::showFA(NodeId Id, TraceSelect Select,
                          std::optional<LabelId> From,
                          const SkStringsOptions &Options) const {
  std::vector<Trace> Selected;
  for (size_t Obj : selectObjects(Id, Select, From))
    Selected.push_back(Classes.Representatives[Obj]);
  return learnSkStringsFA(Selected, table(), Options);
}

std::vector<TransitionId> Session::showTransitions(NodeId Id) const {
  std::vector<TransitionId> Out;
  for (size_t A : Lattice.node(Id).Intent)
    Out.push_back(static_cast<TransitionId>(A));
  return Out;
}

std::vector<size_t> Session::showTraces(NodeId Id, TraceSelect Select,
                                        std::optional<LabelId> From) const {
  return selectObjects(Id, Select, From).toIndices();
}

FocusSession Session::focus(NodeId Id, Automaton FocusFA) const {
  // Collect the concept's traces into a fresh TraceSet (same event table,
  // one copy per class representative).
  std::vector<size_t> ParentObjects = Lattice.node(Id).Extent.toIndices();
  TraceSet SubTraces;
  SubTraces.table() = Traces.table();
  for (size_t Obj : ParentObjects)
    SubTraces.add(Classes.Representatives[Obj]);
  FocusSession F{Session(std::move(SubTraces), std::move(FocusFA), NumThreads),
                 std::move(ParentObjects)};
  return F;
}

void Session::mergeBack(const FocusSession &F) {
  // Sub objects are classes over the focused traces; because the focused
  // traces were distinct representatives, classes are singletons and the
  // object order matches ParentObjects.
  assert(F.Sub.numObjects() == F.ParentObjects.size() &&
         "focus sub-session must have one object per parent object");
  UndoRecord Record;
  for (size_t SubObj = 0; SubObj < F.Sub.numObjects(); ++SubObj) {
    std::optional<LabelId> L = F.Sub.labelOf(SubObj);
    if (!L)
      continue;
    LabelId Here = internLabel(F.Sub.labelName(*L));
    size_t Obj = F.ParentObjects[SubObj];
    Record.emplace_back(Obj, Labels[Obj]);
    Labels[Obj] = Here;
  }
  UndoStack.push_back(std::move(Record));
}

std::string Session::serializeLabels() const {
  std::string Out;
  for (size_t Obj = 0; Obj < numObjects(); ++Obj) {
    if (!Labels[Obj])
      continue;
    Out += LabelNames[*Labels[Obj]];
    Out += ' ';
    Out += Classes.Representatives[Obj].render(table());
    Out += '\n';
  }
  return Out;
}

bool Session::loadLabels(std::string_view Text, std::string &ErrorMsg,
                         size_t *NumUnmatched) {
  // Index current objects by rendered trace text.
  std::unordered_map<std::string, size_t> ByText;
  for (size_t Obj = 0; Obj < numObjects(); ++Obj)
    ByText.emplace(Classes.Representatives[Obj].render(table()), Obj);

  size_t Unmatched = 0;
  size_t LineNo = 0;
  UndoRecord Record;
  for (const std::string &Line : splitString(Text, '\n')) {
    ++LineNo;
    std::string_view Body = trimString(Line);
    if (Body.empty() || Body[0] == '#')
      continue;
    size_t Space = Body.find(' ');
    if (Space == std::string_view::npos) {
      ErrorMsg = "line " + std::to_string(LineNo) +
                 ": expected '<label> <trace>'";
      // Leave the session unchanged on parse errors.
      for (const auto &[Obj, Prior] : Record)
        Labels[Obj] = Prior;
      return false;
    }
    std::string LabelName(Body.substr(0, Space));
    std::string TraceText(trimString(Body.substr(Space + 1)));
    auto It = ByText.find(TraceText);
    if (It == ByText.end()) {
      ++Unmatched;
      continue;
    }
    Record.emplace_back(It->second, Labels[It->second]);
    Labels[It->second] = internLabel(LabelName);
  }
  UndoStack.push_back(std::move(Record));
  if (NumUnmatched)
    *NumUnmatched = Unmatched;
  return true;
}

std::string Session::serializeSnapshot() const {
  std::string Out = "objects " + std::to_string(numObjects()) + "\n";
  if (!LabelNames.empty()) {
    Out += "labels";
    for (const std::string &Name : LabelNames)
      Out += ' ' + Name;
    Out += '\n';
  }
  for (size_t Obj = 0; Obj < Labels.size(); ++Obj)
    if (Labels[Obj])
      Out += "obj " + std::to_string(Obj) + ' ' + LabelNames[*Labels[Obj]] +
             '\n';
  Out += "undo " + std::to_string(UndoStack.size()) + "\n";
  for (const UndoRecord &Record : UndoStack) {
    Out += "record " + std::to_string(Record.size());
    // Prior labels are written as `=<name>` and "no prior label" as `-`,
    // so a label literally named "-" stays unambiguous.
    for (const auto &[Obj, Prior] : Record) {
      Out += ' ' + std::to_string(Obj) + ' ';
      Out += Prior ? '=' + LabelNames[*Prior] : std::string("-");
    }
    Out += '\n';
  }
  return Out;
}

Status Session::loadSnapshot(std::string_view Body) {
  auto Error = [](size_t LineNo, const std::string &Message) {
    Diagnostic D;
    D.Level = Severity::Error;
    D.Code = ErrorCode::ParseError;
    D.Pos.Line = static_cast<uint32_t>(LineNo);
    D.Message = Message;
    return Status::error(std::move(D));
  };

  // Parse into fresh state; the session is only touched once everything
  // checked out.
  std::vector<std::string> NewNames;
  std::vector<std::optional<LabelId>> NewLabels(Classes.numClasses(),
                                                std::nullopt);
  std::vector<UndoRecord> NewUndo;
  auto InternInto = [&NewNames](std::string_view Name) {
    for (LabelId Id = 0; Id < NewNames.size(); ++Id)
      if (NewNames[Id] == Name)
        return Id;
    NewNames.emplace_back(Name);
    return static_cast<LabelId>(NewNames.size() - 1);
  };

  bool SawObjects = false;
  size_t ExpectedUndo = 0;
  bool SawUndo = false;
  size_t LineNo = 0;
  for (const std::string &Line : splitString(Body, '\n')) {
    ++LineNo;
    std::vector<std::string> Fields = splitWhitespace(Line);
    if (Fields.empty() || Fields[0][0] == '#')
      continue;
    const std::string &Kind = Fields[0];
    if (Kind == "objects") {
      std::optional<unsigned long> N =
          Fields.size() == 2 ? parseUnsignedLong(Fields[1]) : std::nullopt;
      if (!N)
        return Error(LineNo, "malformed 'objects' line");
      if (*N != numObjects())
        return Status::error(
            ErrorCode::InvalidArgument,
            "snapshot was taken over " + std::to_string(*N) +
                " object(s) but this session has " +
                std::to_string(numObjects()) +
                " — the journal directory belongs to a different trace "
                "set or reference FA");
      SawObjects = true;
    } else if (Kind == "labels") {
      for (size_t I = 1; I < Fields.size(); ++I)
        InternInto(Fields[I]);
    } else if (Kind == "obj") {
      std::optional<unsigned long> Obj =
          Fields.size() == 3 ? parseUnsignedLong(Fields[1]) : std::nullopt;
      if (!Obj || *Obj >= NewLabels.size())
        return Error(LineNo, "malformed 'obj' line");
      NewLabels[*Obj] = InternInto(Fields[2]);
    } else if (Kind == "undo") {
      std::optional<unsigned long> N =
          Fields.size() == 2 ? parseUnsignedLong(Fields[1]) : std::nullopt;
      if (!N)
        return Error(LineNo, "malformed 'undo' line");
      ExpectedUndo = *N;
      SawUndo = true;
    } else if (Kind == "record") {
      std::optional<unsigned long> N =
          Fields.size() >= 2 ? parseUnsignedLong(Fields[1]) : std::nullopt;
      if (!N || Fields.size() != 2 + 2 * *N)
        return Error(LineNo, "malformed 'record' line");
      UndoRecord Record;
      for (size_t I = 0; I < *N; ++I) {
        std::optional<unsigned long> Obj =
            parseUnsignedLong(Fields[2 + 2 * I]);
        const std::string &Prior = Fields[3 + 2 * I];
        if (!Obj || *Obj >= NewLabels.size())
          return Error(LineNo, "bad object index in 'record' line");
        if (Prior == "-")
          Record.emplace_back(*Obj, std::nullopt);
        else if (Prior.size() > 1 && Prior[0] == '=')
          Record.emplace_back(*Obj,
                              InternInto(std::string_view(Prior).substr(1)));
        else
          return Error(LineNo, "bad prior label '" + Prior +
                                   "' in 'record' line (expected =<name> "
                                   "or -)");
      }
      NewUndo.push_back(std::move(Record));
    } else {
      return Error(LineNo, "unknown snapshot line kind '" + Kind + "'");
    }
  }
  if (!SawObjects)
    return Error(LineNo, "snapshot has no 'objects' line");
  if (SawUndo && NewUndo.size() != ExpectedUndo)
    return Error(LineNo, "snapshot promises " + std::to_string(ExpectedUndo) +
                             " undo record(s) but carries " +
                             std::to_string(NewUndo.size()) +
                             " — truncated snapshot");

  LabelNames = std::move(NewNames);
  Labels = std::move(NewLabels);
  UndoStack = std::move(NewUndo);
  return Status::ok();
}

std::string Session::describeConcept(NodeId Id) const {
  const Concept &C = Lattice.node(Id);
  std::string State;
  switch (stateOf(Id)) {
  case ConceptState::Unlabeled:
    State = "unlabeled";
    break;
  case ConceptState::PartlyLabeled:
    State = "partly-labeled";
    break;
  case ConceptState::FullyLabeled:
    State = "fully-labeled";
    break;
  }
  return "concept " + std::to_string(Id) + ": " +
         std::to_string(C.Extent.count()) + " trace(s), sim=" +
         std::to_string(C.Intent.count()) + ", " + State;
}

std::string Session::renderDot(std::string_view Name) const {
  DotWriter W{std::string(Name)};
  W.addRaw("rankdir=TB;");
  for (NodeId Id = 0; Id < Lattice.size(); ++Id) {
    const Concept &C = Lattice.node(Id);
    std::string Label = "c" + std::to_string(Id) + "\n|traces|=" +
                        std::to_string(C.Extent.count()) +
                        " sim=" + std::to_string(C.Intent.count());
    const char *Color = nullptr;
    switch (stateOf(Id)) {
    case ConceptState::Unlabeled:
      Color = "palegreen";
      break;
    case ConceptState::PartlyLabeled:
      Color = "khaki";
      break;
    case ConceptState::FullyLabeled:
      Color = "lightcoral";
      break;
    }
    W.addNode("c" + std::to_string(Id), Label,
              std::string("shape=box, style=filled, fillcolor=") + Color);
  }
  for (NodeId Id = 0; Id < Lattice.size(); ++Id)
    for (NodeId C : Lattice.children(Id))
      W.addEdge("c" + std::to_string(Id), "c" + std::to_string(C));
  return W.str();
}
