//===- cable/Advisor.h - Interactive lattice fine-tuning --------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §6 closes with: "it would be particularly interesting to
/// explore interactive algorithms, which would allow the user to fine-tune
/// the concept lattice as he uses it for labeling." This module implements
/// that future-work idea:
///
///  - suggestFocusSeeds ranks the events of a concept's traces by how
///    finely a seed-order template on that event would re-split the
///    concept — the suggestion a user wants when staring at a mixed
///    concept;
///  - AutoFocusStrategy extends the Top-down strategy to *act* on the
///    suggestion: when a traversal stalls (the lattice is not well-formed
///    for the target labeling), it opens a Focus sub-session on the
///    stuck concept with the best suggested seed FA, labels inside it,
///    merges back, and resumes.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CABLE_ADVISOR_H
#define CABLE_CABLE_ADVISOR_H

#include "cable/Session.h"
#include "cable/Strategies.h"

#include <vector>

namespace cable {

/// One focus-seed suggestion.
struct SeedSuggestion {
  /// Seed event for the seed-order template.
  EventId Seed;
  /// How many distinct attribute rows the template induces on the
  /// concept's traces (more = finer split).
  size_t NumGroups = 0;
  /// How many of the concept's traces the template accepts (traces
  /// without the seed are rejected and land in one extra group).
  size_t NumAccepted = 0;
};

/// Ranks candidate seeds for focusing on \p Id. Candidates are the events
/// occurring in the concept's traces; ranking is by NumGroups descending
/// (then by acceptance, then event id for determinism). Returns at most
/// \p MaxSuggestions entries, best first, and only ones that actually
/// split the concept (NumGroups >= 2).
std::vector<SeedSuggestion> suggestFocusSeeds(const Session &S,
                                              ConceptLattice::NodeId Id,
                                              size_t MaxSuggestions = 5);

/// Builds the focus FA a suggestion stands for: unordered template over
/// the concept's alphabet plus the seed-order component on \p Seed (the
/// union keeps every trace accepted).
Automaton buildSuggestedFocusFA(const Session &S, ConceptLattice::NodeId Id,
                                EventId Seed);

/// One name-projection suggestion (§4.1's other template family; "name
/// projections work well when the inferred FA mentions several names").
struct ProjectionSuggestion {
  /// Canonical value to project onto.
  ValueId Value = 0;
  /// Distinct attribute rows the projection induces on the concept's
  /// traces.
  size_t NumGroups = 0;
};

/// Ranks canonical values occurring in the concept's traces by how finely
/// a name-projection template on that value re-splits the concept. Only
/// values that actually split it (NumGroups >= 2) are returned, best
/// first.
std::vector<ProjectionSuggestion>
suggestNameProjections(const Session &S, ConceptLattice::NodeId Id,
                       size_t MaxSuggestions = 5);

/// Top-down labeling that self-repairs ill-formed lattices by focusing
/// with suggested seed FAs (§6 future work made concrete). The cost model
/// charges the sub-session's inspections and label operations like the
/// parent's, plus one inspection per focus opened.
class AutoFocusStrategy : public Strategy {
public:
  /// \p MaxFocusDepth bounds recursive focusing.
  explicit AutoFocusStrategy(size_t MaxFocusDepth = 3)
      : MaxFocusDepth(MaxFocusDepth) {}
  std::string name() const override { return "Top-down+autofocus"; }
  StrategyCost run(Session &S, const ReferenceLabeling &Target) override;

private:
  size_t MaxFocusDepth;

  StrategyCost runAtDepth(Session &S, const ReferenceLabeling &Target,
                          size_t Depth);
};

} // namespace cable

#endif // CABLE_CABLE_ADVISOR_H
