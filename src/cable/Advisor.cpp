//===- cable/Advisor.cpp - Interactive lattice fine-tuning -----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cable/Advisor.h"

#include "fa/Templates.h"
#include "support/BitVector.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace cable;

std::vector<SeedSuggestion>
cable::suggestFocusSeeds(const Session &S, ConceptLattice::NodeId Id,
                         size_t MaxSuggestions) {
  // The concept's traces and their alphabet.
  std::vector<Trace> Traces;
  for (size_t Obj : S.lattice().node(Id).Extent)
    Traces.push_back(S.object(Obj));
  if (Traces.size() < 2)
    return {};
  std::vector<EventId> Alphabet = templateAlphabet(Traces);

  // The advisor only reads the table; seed-order FAs over existing events
  // intern nothing new, so a private copy keeps the API const.
  EventTable Table = S.table();

  std::vector<SeedSuggestion> Out;
  for (EventId Seed : Alphabet) {
    Automaton FA = makeSeedOrderFA(Alphabet, Seed, Table);
    std::unordered_set<BitVector, BitVectorHash> Groups;
    size_t Accepted = 0;
    bool AnyRejected = false;
    for (const Trace &T : Traces) {
      BitVector Row = FA.executedTransitions(T, Table);
      if (Row.none()) {
        AnyRejected = true;
        continue;
      }
      ++Accepted;
      Groups.insert(std::move(Row));
    }
    SeedSuggestion Suggestion;
    Suggestion.Seed = Seed;
    // Rejected traces form one extra group (empty attribute rows).
    Suggestion.NumGroups = Groups.size() + (AnyRejected ? 1 : 0);
    Suggestion.NumAccepted = Accepted;
    if (Suggestion.NumGroups >= 2)
      Out.push_back(Suggestion);
  }
  std::sort(Out.begin(), Out.end(),
            [](const SeedSuggestion &A, const SeedSuggestion &B) {
              if (A.NumGroups != B.NumGroups)
                return A.NumGroups > B.NumGroups;
              if (A.NumAccepted != B.NumAccepted)
                return A.NumAccepted > B.NumAccepted;
              return A.Seed < B.Seed;
            });
  if (Out.size() > MaxSuggestions)
    Out.resize(MaxSuggestions);
  return Out;
}

std::vector<ProjectionSuggestion>
cable::suggestNameProjections(const Session &S, ConceptLattice::NodeId Id,
                              size_t MaxSuggestions) {
  std::vector<Trace> Traces;
  for (size_t Obj : S.lattice().node(Id).Extent)
    Traces.push_back(S.object(Obj));
  if (Traces.size() < 2)
    return {};
  std::vector<EventId> Alphabet = templateAlphabet(Traces);
  EventTable Table = S.table();

  // Candidate values: every canonical value any trace mentions.
  std::vector<ValueId> Values;
  {
    std::unordered_set<ValueId> Seen;
    for (EventId E : Alphabet)
      for (ValueId V : Table.event(E).Args)
        if (Seen.insert(V).second)
          Values.push_back(V);
  }

  std::vector<ProjectionSuggestion> Out;
  for (ValueId V : Values) {
    Automaton FA = makeNameProjectionFA(Alphabet, V, Table);
    std::unordered_set<BitVector, BitVectorHash> Groups;
    for (const Trace &T : Traces)
      Groups.insert(FA.executedTransitions(T, Table));
    if (Groups.size() >= 2)
      Out.push_back(ProjectionSuggestion{V, Groups.size()});
  }
  std::sort(Out.begin(), Out.end(),
            [](const ProjectionSuggestion &A, const ProjectionSuggestion &B) {
              if (A.NumGroups != B.NumGroups)
                return A.NumGroups > B.NumGroups;
              return A.Value < B.Value;
            });
  if (Out.size() > MaxSuggestions)
    Out.resize(MaxSuggestions);
  return Out;
}

Automaton cable::buildSuggestedFocusFA(const Session &S,
                                       ConceptLattice::NodeId Id,
                                       EventId Seed) {
  std::vector<Trace> Traces;
  for (size_t Obj : S.lattice().node(Id).Extent)
    Traces.push_back(S.object(Obj));
  std::vector<EventId> Alphabet = templateAlphabet(Traces);
  EventTable Table = S.table();
  return Automaton::disjointUnion(makeUnorderedFA(Alphabet, Table),
                                  makeSeedOrderFA(Alphabet, Seed, Table));
}

StrategyCost AutoFocusStrategy::run(Session &S,
                                    const ReferenceLabeling &Target) {
  S.clearLabels();
  return runAtDepth(S, Target, 0);
}

StrategyCost AutoFocusStrategy::runAtDepth(Session &S,
                                           const ReferenceLabeling &Target,
                                           size_t Depth) {
  StrategyCost Cost;
  const ConceptLattice &L = S.lattice();
  using NodeId = ConceptLattice::NodeId;

  for (;;) {
    if (S.allLabeled()) {
      Cost.Finished = true;
      return Cost;
    }

    // One top-down sweep (same policy as TopDownStrategy).
    bool Progress = false;
    std::vector<bool> Enqueued(L.size(), false);
    std::deque<NodeId> Queue;
    Queue.push_back(L.top());
    Enqueued[L.top()] = true;
    while (!Queue.empty()) {
      NodeId Id = Queue.front();
      Queue.pop_front();
      if (S.stateOf(Id) != ConceptState::FullyLabeled) {
        ++Cost.Inspections;
        BitVector U = S.selectObjects(Id, TraceSelect::Unlabeled);
        if (U.any() && Target.uniform(U)) {
          S.labelTraces(Id, TraceSelect::Unlabeled, Target.sharedLabel(U));
          ++Cost.LabelOps;
          Progress = true;
        }
      }
      for (NodeId C : L.children(Id))
        if (!Enqueued[C] && S.stateOf(C) != ConceptState::FullyLabeled) {
          Enqueued[C] = true;
          Queue.push_back(C);
        }
    }
    if (Progress)
      continue;

    // Stuck: the lattice is not well-formed for what remains. Find the
    // lowest stuck concept (smallest extent still carrying unlabeled
    // traces) and focus it with the best suggested seed FA.
    if (Depth >= MaxFocusDepth)
      return Cost;
    std::optional<NodeId> Stuck;
    size_t BestSize = static_cast<size_t>(-1);
    for (NodeId Id = 0; Id < L.size(); ++Id) {
      if (S.stateOf(Id) == ConceptState::FullyLabeled)
        continue;
      size_t Size = L.node(Id).Extent.count();
      if (Size < BestSize) {
        BestSize = Size;
        Stuck = Id;
      }
    }
    if (!Stuck)
      return Cost; // Unreachable: !allLabeled implies a stuck concept.

    std::vector<SeedSuggestion> Suggestions = suggestFocusSeeds(S, *Stuck);
    bool Focused = false;
    for (const SeedSuggestion &Suggestion : Suggestions) {
      ++Cost.Inspections; // Opening and examining the focus is an op.
      FocusSession F =
          S.focus(*Stuck, buildSuggestedFocusFA(S, *Stuck, Suggestion.Seed));

      // Restrict the target labeling to the sub-session's objects.
      ReferenceLabeling SubTarget;
      for (size_t ParentObj : F.ParentObjects)
        SubTarget.Target.push_back(Target.Target[ParentObj]);
      // Sub-session labels must share ids with the parent: intern the
      // parent's names in order.
      for (LabelId Id = 0; Id < S.numLabels(); ++Id)
        F.Sub.internLabel(S.labelName(Id));

      StrategyCost SubCost = runAtDepth(F.Sub, SubTarget, Depth + 1);
      Cost.Inspections += SubCost.Inspections;
      Cost.LabelOps += SubCost.LabelOps;
      if (!SubCost.Finished)
        continue; // Try the next suggestion.
      S.mergeBack(F);
      Focused = true;
      break;
    }
    if (!Focused)
      return Cost; // No suggestion separates the stuck concept.
  }
}
