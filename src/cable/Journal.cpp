//===- cable/Journal.cpp - Write-ahead session journal ---------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cable/Journal.h"

#include "support/AtomicFile.h"
#include "support/Failpoint.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/StringUtil.h"
#include "support/TraceEvent.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace cable;

namespace {

Failpoint::Registrar RegAppend("journal-append");
Failpoint::Registrar RegFsync("journal-fsync");
Failpoint::Registrar RegSnapshot("journal-snapshot");

Metrics::Counter &NumAppends = Metrics::counter("journal.appends");
Metrics::Counter &BytesWritten = Metrics::counter("journal.bytes-written");
Metrics::Counter &NumRecoveries = Metrics::counter("journal.recoveries");
Metrics::Counter &NumUncleanRecoveries =
    Metrics::counter("journal.unclean-recoveries");
Metrics::Counter &NumTornTails = Metrics::counter("journal.torn-tails");
Metrics::Counter &NumReplayed = Metrics::counter("journal.replayed-commands");
Metrics::Histogram &AppendUs = Metrics::histogram("journal.append-us");
Metrics::Histogram &FsyncUs = Metrics::histogram("journal.fsync-us");
Metrics::Histogram &SnapshotUs = Metrics::histogram("journal.snapshot-us");

constexpr char kMagic[4] = {'C', 'B', 'L', 'J'};
constexpr size_t kHeaderSize = 8;

Status ioError(const std::string &Path, const std::string &What) {
  Diagnostic D;
  D.Level = Severity::Error;
  D.Code = ErrorCode::IoError;
  D.File = Path;
  D.Message = What + ": " + std::strerror(errno);
  return Status::error(std::move(D));
}

std::string encodeHeader() {
  std::string H(kMagic, sizeof(kMagic));
  for (int I = 0; I < 4; ++I)
    H.push_back(static_cast<char>((Journal::kFormatVersion >> (8 * I)) &
                                  0xFF));
  return H;
}

uint64_t decodeSeq(std::string_view Payload) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(Payload[static_cast<size_t>(I)]);
  return V;
}

void encodeSeq(std::string &Out, uint64_t Seq) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((Seq >> (8 * I)) & 0xFF));
}

Status writeAll(int Fd, const std::string &Path, std::string_view Data) {
  size_t Written = 0;
  while (Written < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Written, Data.size() - Written);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ioError(Path, "write failed");
    }
    Written += static_cast<size_t>(N);
  }
  return Status::ok();
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

} // namespace

std::string Journal::logPath(const std::string &Dir) {
  return Dir + "/journal.log";
}
std::string Journal::snapshotPath(const std::string &Dir) {
  return Dir + "/snapshot.cable";
}
std::string Journal::markerPath(const std::string &Dir) {
  return Dir + "/ACTIVE";
}

Journal::~Journal() {
  if (Fd >= 0)
    ::close(Fd);
}

Journal::Journal(Journal &&Other) noexcept
    : Dir(std::move(Other.Dir)), Fd(Other.Fd), Seq(Other.Seq),
      SnapSeq(Other.SnapSeq), Policy(Other.Policy), Dirty(Other.Dirty) {
  Other.Fd = -1;
}

Journal &Journal::operator=(Journal &&Other) noexcept {
  if (this != &Other) {
    if (Fd >= 0)
      ::close(Fd);
    Dir = std::move(Other.Dir);
    Fd = Other.Fd;
    Seq = Other.Seq;
    SnapSeq = Other.SnapSeq;
    Policy = Other.Policy;
    Dirty = Other.Dirty;
    Other.Fd = -1;
  }
  return *this;
}

StatusOr<Journal> Journal::open(const std::string &DirPath, Recovery &Out) {
  Out = Recovery();
  if (::mkdir(DirPath.c_str(), 0755) != 0 && errno != EEXIST)
    return ioError(DirPath, "cannot create journal directory");

  Out.UncleanShutdown = fileExists(markerPath(DirPath));

  // Snapshot first: it defines which log records are live.
  if (fileExists(snapshotPath(DirPath))) {
    StatusOr<std::string> Text = readFileToString(snapshotPath(DirPath));
    if (!Text)
      return Text.status();
    StatusOr<CheckedText> Checked = readChecksumHeader(
        "cable-snapshot", *Text, snapshotPath(DirPath), /*AllowLegacy=*/false);
    if (!Checked)
      return Checked.status();
    std::string_view Body = Checked->Body;
    size_t Eol = Body.find('\n');
    std::string_view SeqLine =
        Eol == std::string_view::npos ? Body : Body.substr(0, Eol);
    std::vector<std::string> Fields = splitWhitespace(SeqLine);
    std::optional<unsigned long> S;
    if (Fields.size() == 2 && Fields[0] == "seq")
      S = parseUnsignedLong(Fields[1]);
    if (!S) {
      Diagnostic D;
      D.Level = Severity::Error;
      D.Code = ErrorCode::ParseError;
      D.File = snapshotPath(DirPath);
      D.Pos.Line = 2;
      D.Message = "snapshot body must start with 'seq <N>'";
      return Status::error(std::move(D));
    }
    Out.HasSnapshot = true;
    Out.SnapshotSeq = *S;
    Out.SnapshotBody = Eol == std::string_view::npos
                           ? std::string()
                           : std::string(Body.substr(Eol + 1));
  }

  // Scan the log. A partial header (a crash during creation) counts as an
  // empty log; a wrong magic means the directory is not ours — refuse.
  uint64_t LastSeq = Out.SnapshotSeq;
  size_t ValidLen = 0; // Bytes of journal.log that survive (0 = rewrite).
  if (fileExists(logPath(DirPath))) {
    StatusOr<std::string> Text = readFileToString(logPath(DirPath));
    if (!Text)
      return Text.status();
    const std::string &Data = *Text;
    if (Data.size() >= sizeof(kMagic) &&
        std::memcmp(Data.data(), kMagic, sizeof(kMagic)) != 0) {
      Diagnostic D;
      D.Level = Severity::Error;
      D.Code = ErrorCode::ParseError;
      D.File = logPath(DirPath);
      D.Message = "not a cable journal (bad magic)";
      return Status::error(std::move(D));
    }
    if (Data.size() >= kHeaderSize) {
      FramedScan Scan = scanFramedRecords(
          std::string_view(Data).substr(kHeaderSize));
      ValidLen = kHeaderSize;
      for (const FramedRecord &R : Scan.Records) {
        if (R.Payload.size() < 8) {
          // A record too short to carry a sequence number is corruption;
          // treat everything from here on as torn.
          Diagnostic D;
          D.Level = Severity::Warning;
          D.Code = ErrorCode::ParseError;
          D.File = logPath(DirPath);
          D.Message = "record without a sequence number; discarding it "
                      "and the rest of the log tail";
          Out.TornTail = Status::error(std::move(D));
          break;
        }
        uint64_t Seq = decodeSeq(R.Payload);
        ValidLen = kHeaderSize + R.Offset + 8 + R.Payload.size();
        if (Seq > Out.SnapshotSeq)
          Out.Commands.emplace_back(R.Payload.substr(8));
        if (Seq > LastSeq)
          LastSeq = Seq;
      }
      if (Scan.Torn && Out.TornTail.isOk()) {
        Status S = Scan.TornStatus;
        Diagnostic D = S.diagnostic();
        D.File = logPath(DirPath);
        Out.TornTail = Status::error(std::move(D));
      }
    }
  }

  Journal J;
  J.Dir = DirPath;
  J.Seq = LastSeq;
  J.SnapSeq = Out.SnapshotSeq;

  // (Re)open for append, truncating away any torn tail so the next scan
  // never stops early at stale garbage.
  int Fd = ::open(logPath(DirPath).c_str(), O_WRONLY | O_CREAT, 0644);
  if (Fd < 0)
    return ioError(logPath(DirPath), "cannot open journal log");
  J.Fd = Fd;
  if (ValidLen == 0) {
    if (::ftruncate(Fd, 0) != 0)
      return ioError(logPath(DirPath), "cannot truncate journal log");
    if (Status S = writeAll(Fd, logPath(DirPath), encodeHeader()); !S.isOk())
      return S;
  } else if (::ftruncate(Fd, static_cast<off_t>(ValidLen)) != 0) {
    return ioError(logPath(DirPath), "cannot truncate torn journal tail");
  }
  if (::lseek(Fd, 0, SEEK_END) < 0)
    return ioError(logPath(DirPath), "cannot seek journal log");
  if (::fsync(Fd) != 0)
    return ioError(logPath(DirPath), "fsync failed");

  // Drop the ACTIVE marker: from here on, an open journal means a live
  // session; only closeClean removes it.
  int MarkerFd =
      ::open(markerPath(DirPath).c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (MarkerFd < 0)
    return ioError(markerPath(DirPath), "cannot create ACTIVE marker");
  std::string Pid = std::to_string(::getpid()) + "\n";
  if (Status S = writeAll(MarkerFd, markerPath(DirPath), Pid); !S.isOk()) {
    ::close(MarkerFd);
    return S;
  }
  ::fsync(MarkerFd);
  ::close(MarkerFd);

  NumRecoveries.add();
  if (Out.UncleanShutdown) {
    NumUncleanRecoveries.add();
    CABLE_LOG_WARN("journal", "journal-unclean-recovery",
                   "previous session died with the journal open",
                   {Log::str("dir", DirPath)});
  }
  if (!Out.TornTail.isOk()) {
    NumTornTails.add();
    CABLE_LOG_WARN("journal", "journal-torn-tail",
                   "torn tail truncated during recovery",
                   {Log::str("dir", DirPath),
                    Log::str("error", Out.TornTail.message())});
  }
  NumReplayed.add(Out.Commands.size());
  if (!Out.Commands.empty())
    CABLE_LOG_INFO("journal", "journal-replayed",
                   "recovered commands will be replayed",
                   {Log::num("commands",
                             static_cast<int64_t>(Out.Commands.size()))});

  return J;
}

Status Journal::append(std::string_view Command) {
  MetricTimer Timer(AppendUs);
  if (Status S = Failpoint::hit("journal-append"); !S.isOk())
    return S;
  std::string Payload;
  Payload.reserve(Command.size() + 8);
  encodeSeq(Payload, Seq + 1);
  Payload.append(Command);
  std::string Framed = encodeFramedRecord(Payload);
  if (Status S = writeAll(Fd, logPath(Dir), Framed); !S.isOk())
    return S;
  NumAppends.add();
  BytesWritten.add(Framed.size());
  if (Policy == SyncPolicy::EveryRecord) {
    if (Status S = Failpoint::hit("journal-fsync"); !S.isOk())
      return S;
    TraceSpan Span("journal-fsync");
    MetricTimer FsyncTimer(FsyncUs);
    if (::fsync(Fd) != 0)
      return ioError(logPath(Dir), "fsync failed");
  } else {
    Dirty = true;
  }
  ++Seq;
  return Status::ok();
}

Status Journal::flush() {
  if (Fd < 0 || !Dirty)
    return Status::ok();
  if (Status S = Failpoint::hit("journal-fsync"); !S.isOk())
    return S;
  TraceSpan Span("journal-fsync");
  MetricTimer FsyncTimer(FsyncUs);
  if (::fsync(Fd) != 0)
    return ioError(logPath(Dir), "fsync failed");
  Dirty = false;
  return Status::ok();
}

Status Journal::snapshot(std::string_view SessionBody) {
  TraceSpan Span("journal-snapshot");
  MetricTimer Timer(SnapshotUs);
  if (Status S = Failpoint::hit("journal-snapshot"); !S.isOk())
    return S;
  std::string Body = "seq " + std::to_string(Seq) + "\n";
  Body.append(SessionBody);
  if (Status S = AtomicFile::write(snapshotPath(Dir),
                                   withChecksumHeader("cable-snapshot", 1,
                                                      Body));
      !S.isOk())
    return S;
  // The snapshot is durable; every logged record is now dead. Compact.
  // A crash between the rename above and the truncate below only leaves
  // records with seq <= snapshot seq, which recovery skips.
  if (::ftruncate(Fd, static_cast<off_t>(kHeaderSize)) != 0)
    return ioError(logPath(Dir), "cannot compact journal log");
  if (::lseek(Fd, 0, SEEK_END) < 0)
    return ioError(logPath(Dir), "cannot seek journal log");
  if (::fsync(Fd) != 0)
    return ioError(logPath(Dir), "fsync failed");
  SnapSeq = Seq;
  Dirty = false;
  return Status::ok();
}

Status Journal::closeClean() {
  if (Fd < 0)
    return Status::ok();
  if (::fsync(Fd) != 0)
    return ioError(logPath(Dir), "fsync failed");
  Dirty = false;
  ::close(Fd);
  Fd = -1;
  if (::unlink(markerPath(Dir).c_str()) != 0 && errno != ENOENT)
    return ioError(markerPath(Dir), "cannot remove ACTIVE marker");
  return Status::ok();
}
