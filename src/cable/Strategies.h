//===- cable/Strategies.h - Labeling strategies (§4.2) ----------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automatic labeling strategies of §4.2 and the Baseline method of
/// §5.3, with the paper's cost model: every concept *inspection* costs one
/// operation and every *label* command costs one operation; a strategy may
/// not label a concept it has not inspected. Each strategy receives the
/// reference labeling (the "answer key") and replays the cheapest behavior
/// consistent with its policy:
///
///  - Top-down:  repeated breadth-first sweeps from the top concept,
///               labeling whenever a concept's unlabeled traces agree;
///  - Bottom-up: always process a concept whose children are fully
///               labeled (never inspects an unlabelable concept);
///  - Random:    uniformly random not-fully-labeled concepts;
///  - Optimal:   exhaustive uniform-cost search for a shortest operation
///               sequence (may hit its state cap, like the paper's
///               evaluation program on the four largest specifications);
///  - ExpertSim: the described expert behavior — mostly top-down, steering
///               toward children whose transitions discriminate the
///               labels, and sweeping remainders after children settle;
///  - Baseline:  no lattice; two operations per class of identical traces.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_CABLE_STRATEGIES_H
#define CABLE_CABLE_STRATEGIES_H

#include "cable/Session.h"
#include "cable/WellFormed.h"
#include "support/RNG.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace cable {

/// Operation counts for one strategy run.
struct StrategyCost {
  size_t Inspections = 0;
  size_t LabelOps = 0;
  /// False if the strategy could not finish (ill-formed lattice, or the
  /// Optimal search hit its cap).
  bool Finished = false;

  size_t total() const { return Inspections + LabelOps; }
};

/// Common interface. run() must leave the session fully labeled per
/// \p Target when it reports Finished (labels are cleared on entry).
class Strategy {
public:
  virtual ~Strategy() = default;
  virtual std::string name() const = 0;
  virtual StrategyCost run(Session &S, const ReferenceLabeling &Target) = 0;
};

/// Repeated breadth-first traversals from the top (§4.2). The traversal
/// order among siblings is left open by the paper (its Table 3 reports the
/// *lowest* cost over the strategy's nondeterministic choices); pass an
/// RNG to randomize sibling order, or none for the deterministic order.
class TopDownStrategy : public Strategy {
public:
  TopDownStrategy() = default;
  explicit TopDownStrategy(RNG Rand) : Rand(Rand) {}
  std::string name() const override { return "Top-down"; }
  StrategyCost run(Session &S, const ReferenceLabeling &Target) override;

private:
  std::optional<RNG> Rand;
};

/// Processes concepts whose children are all fully labeled (§4.2). The
/// choice among ready concepts is the strategy's nondeterminism; pass an
/// RNG to randomize it.
class BottomUpStrategy : public Strategy {
public:
  BottomUpStrategy() = default;
  explicit BottomUpStrategy(RNG Rand) : Rand(Rand) {}
  std::string name() const override { return "Bottom-up"; }
  StrategyCost run(Session &S, const ReferenceLabeling &Target) override;

private:
  std::optional<RNG> Rand;
};

/// Visits not-fully-labeled concepts in uniformly random order (§4.2).
class RandomStrategy : public Strategy {
public:
  explicit RandomStrategy(RNG Rand) : Rand(Rand) {}
  std::string name() const override { return "Random"; }
  StrategyCost run(Session &S, const ReferenceLabeling &Target) override;

private:
  RNG Rand;
};

/// Uniform-cost search for a minimal operation sequence (§4.2). The search
/// space is the set of labeled-object bitsets; StateCap bounds it.
class OptimalStrategy : public Strategy {
public:
  explicit OptimalStrategy(size_t StateCap = 2'000'000)
      : StateCap(StateCap) {}
  std::string name() const override { return "Optimal"; }
  StrategyCost run(Session &S, const ReferenceLabeling &Target) override;

private:
  size_t StateCap;
};

/// Simulates the paper's expert (§5.3): "a mostly top-down approach, but
/// sometimes directed his search based on transitions he found
/// interesting". Children with label-pure extents are visited first (the
/// expert recognizes their discriminating transitions), and after a
/// concept's informative children settle, its remainder is labeled in one
/// sweep — the §2.1 workflow.
class ExpertSimStrategy : public Strategy {
public:
  std::string name() const override { return "Expert"; }
  StrategyCost run(Session &S, const ReferenceLabeling &Target) override;
};

/// The §5.3 Baseline: inspect + label each class of identical traces;
/// exactly 2 * numObjects() operations, no lattice involved.
class BaselineMethod : public Strategy {
public:
  std::string name() const override { return "Baseline"; }
  StrategyCost run(Session &S, const ReferenceLabeling &Target) override;
};

/// §4.3's manual fallback: run Top-down, and when the lattice's
/// ill-formedness stalls it, label every remaining trace by hand ("the
/// user can label the traces in those concepts by hand") at the Baseline
/// rate of two operations per trace. Always finishes; the cost shows how
/// much lattice leverage survives a bad reference FA.
class HandLabelFallbackStrategy : public Strategy {
public:
  std::string name() const override { return "Top-down+hand"; }
  StrategyCost run(Session &S, const ReferenceLabeling &Target) override;
};

/// Runs \p NumTrials Random trials and returns the mean total cost (the
/// paper reports the arithmetic mean of 1024 trials). Returns unfinished
/// if any trial fails to finish.
struct RandomSummary {
  double MeanTotal = 0;
  bool Finished = false;
};
RandomSummary measureRandomMean(Session &S, const ReferenceLabeling &Target,
                                size_t NumTrials, uint64_t Seed);

/// Reruns a randomized strategy \p NumTrials times and returns the lowest
/// finished total (the paper's Table 3 reports "the lowest cost for
/// Top-down and Bottom-up"). \p Make builds a fresh strategy per trial
/// from the trial's RNG. Unfinished if no trial finishes.
struct LowestSummary {
  size_t LowestTotal = 0;
  bool Finished = false;
};
LowestSummary
measureLowestCost(Session &S, const ReferenceLabeling &Target,
                  size_t NumTrials, uint64_t Seed,
                  const std::function<std::unique_ptr<Strategy>(RNG)> &Make);

} // namespace cable

#endif // CABLE_CABLE_STRATEGIES_H
