//===- cable/Strategies.cpp - Labeling strategies (§4.2) -------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "cable/Strategies.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace cable;

namespace {

using NodeId = ConceptLattice::NodeId;

/// Inspecting-then-labeling one concept under the canonical strategy rule:
/// the inspection is already charged by the caller; if the concept's
/// unlabeled traces all share a target label, one label command applies it.
/// Returns true if a label command was issued.
bool labelIfUniform(Session &S, NodeId Id, const ReferenceLabeling &Target,
                    StrategyCost &Cost) {
  BitVector U = S.selectObjects(Id, TraceSelect::Unlabeled);
  if (U.none() || !Target.uniform(U))
    return false;
  S.labelTraces(Id, TraceSelect::Unlabeled, Target.sharedLabel(U));
  ++Cost.LabelOps;
  return true;
}

} // namespace

StrategyCost TopDownStrategy::run(Session &S,
                                  const ReferenceLabeling &Target) {
  S.clearLabels();
  StrategyCost Cost;
  const ConceptLattice &L = S.lattice();

  for (;;) {
    if (S.allLabeled()) {
      Cost.Finished = true;
      return Cost;
    }
    // One breadth-first traversal from the top over concepts that still
    // have unlabeled traces. Sibling order is the strategy's
    // nondeterministic choice; shuffle it when randomized.
    bool Progress = false;
    std::vector<bool> Enqueued(L.size(), false);
    std::deque<NodeId> Queue;
    Queue.push_back(L.top());
    Enqueued[L.top()] = true;
    while (!Queue.empty()) {
      NodeId Id = Queue.front();
      Queue.pop_front();
      if (S.stateOf(Id) != ConceptState::FullyLabeled) {
        ++Cost.Inspections;
        if (labelIfUniform(S, Id, Target, Cost))
          Progress = true;
      }
      std::vector<NodeId> Children = L.children(Id);
      if (Rand)
        Rand->shuffle(Children);
      for (NodeId C : Children)
        if (!Enqueued[C] && S.stateOf(C) != ConceptState::FullyLabeled) {
          Enqueued[C] = true;
          Queue.push_back(C);
        }
    }
    if (!Progress)
      return Cost; // Ill-formed for this labeling; unfinished.
  }
}

StrategyCost BottomUpStrategy::run(Session &S,
                                   const ReferenceLabeling &Target) {
  S.clearLabels();
  StrategyCost Cost;
  const ConceptLattice &L = S.lattice();

  while (!S.allLabeled()) {
    // Ready concepts: not fully labeled, all children fully labeled. The
    // pick among them is the strategy's nondeterministic choice.
    std::vector<NodeId> Ready;
    for (NodeId Id = 0; Id < L.size(); ++Id) {
      if (S.stateOf(Id) == ConceptState::FullyLabeled)
        continue;
      bool ChildrenDone = true;
      for (NodeId C : L.children(Id))
        if (S.stateOf(C) != ConceptState::FullyLabeled) {
          ChildrenDone = false;
          break;
        }
      if (ChildrenDone) {
        Ready.push_back(Id);
        if (!Rand)
          break; // Deterministic: first ready concept.
      }
    }
    if (Ready.empty())
      return Cost; // Unreachable in a finite lattice, but stay safe.
    NodeId Next = Rand ? Ready[Rand->nextIndex(Ready.size())] : Ready[0];
    ++Cost.Inspections;
    if (!labelIfUniform(S, Next, Target, Cost))
      return Cost; // Mixed leaves: lattice ill-formed for this labeling.
  }
  Cost.Finished = true;
  return Cost;
}

StrategyCost RandomStrategy::run(Session &S, const ReferenceLabeling &Target) {
  S.clearLabels();
  StrategyCost Cost;
  const ConceptLattice &L = S.lattice();

  size_t SinceLastLabel = 0;
  while (!S.allLabeled()) {
    std::vector<NodeId> Candidates;
    for (NodeId Id = 0; Id < L.size(); ++Id)
      if (S.stateOf(Id) != ConceptState::FullyLabeled)
        Candidates.push_back(Id);
    NodeId Pick = Candidates[Rand.nextIndex(Candidates.size())];
    ++Cost.Inspections;
    if (labelIfUniform(S, Pick, Target, Cost)) {
      SinceLastLabel = 0;
    } else if (++SinceLastLabel > 4 * L.size() + 64) {
      return Cost; // No labelable concept seems to exist: ill-formed.
    }
  }
  Cost.Finished = true;
  return Cost;
}

StrategyCost OptimalStrategy::run(Session &S,
                                  const ReferenceLabeling &Target) {
  S.clearLabels();
  StrategyCost Cost;
  const ConceptLattice &L = S.lattice();
  size_t N = S.numObjects();

  // Uniform-cost search over labeled-object sets. Every useful move
  // (inspect a concept whose unlabeled traces agree, then label) costs 2;
  // inspecting without labeling can never help a perfectly informed
  // strategy, so moves are exactly the labelable concepts.
  BitVector Start(N);
  BitVector Goal(N);
  Goal.setAll();

  if (N == 0) {
    Cost.Finished = true;
    return Cost;
  }

  std::unordered_set<BitVector, BitVectorHash> Seen;
  std::deque<std::pair<BitVector, size_t>> Queue; // (labeled set, #moves)
  Seen.insert(Start);
  Queue.emplace_back(Start, 0);

  while (!Queue.empty()) {
    auto [Labeled, Moves] = Queue.front();
    Queue.pop_front();
    if (Labeled == Goal) {
      Cost.Inspections = Moves;
      Cost.LabelOps = Moves;
      Cost.Finished = true;
      // Leave the session labeled per the target.
      for (size_t Obj = 0; Obj < N; ++Obj)
        S.setLabel(Obj, Target.Target[Obj]);
      return Cost;
    }
    for (NodeId Id = 0; Id < L.size(); ++Id) {
      BitVector U = L.node(Id).Extent;
      U.andNot(Labeled);
      if (U.none() || !Target.uniform(U))
        continue;
      BitVector NextSet = Labeled;
      NextSet |= U;
      if (Seen.insert(NextSet).second) {
        if (Seen.size() > StateCap)
          return Cost; // Cap hit: report unfinished (like the paper's tool).
        Queue.emplace_back(std::move(NextSet), Moves + 1);
      }
    }
  }
  return Cost; // No sequence reaches the goal: ill-formed lattice.
}

StrategyCost ExpertSimStrategy::run(Session &S,
                                    const ReferenceLabeling &Target) {
  S.clearLabels();
  StrategyCost Cost;
  const ConceptLattice &L = S.lattice();
  std::vector<bool> Visited(L.size(), false);

  // Depth-first descent from a concept: label it if its unlabeled traces
  // agree; otherwise recurse into its most promising children and sweep up
  // the remainder (the §2.1 workflow: label `popen && pclose` below, then
  // revisit the `popen` concept for the leftovers).
  auto Visit = [&](auto &&Self, NodeId Id) -> void {
    if (Visited[Id] || S.stateOf(Id) == ConceptState::FullyLabeled)
      return;
    Visited[Id] = true;
    ++Cost.Inspections;
    BitVector Unlabeled = S.selectObjects(Id, TraceSelect::Unlabeled);
    bool BigDecision = Unlabeled.count() > 4;
    if (labelIfUniform(S, Id, Target, Cost)) {
      // §4.2: "even when all of a concept's traces should receive the
      // same label, the user might need to inspect the concept's
      // subconcepts to convince himself of that fact." Charge those
      // confidence inspections when the en-masse decision is large.
      if (BigDecision) {
        size_t Checked = 0;
        for (NodeId C : L.children(Id)) {
          if (Checked == 2)
            break;
          if (L.node(C).Extent.any()) {
            ++Cost.Inspections;
            ++Checked;
          }
        }
      }
      return;
    }

    // Mixed concept: order children by the expert's interest — label-pure
    // children first (their intents carry the discriminating transitions),
    // bigger unlabeled sets first within a purity class.
    std::vector<std::pair<NodeId, std::pair<int, size_t>>> Ranked;
    for (NodeId C : L.children(Id)) {
      BitVector U = S.selectObjects(C, TraceSelect::Unlabeled);
      if (U.none())
        continue;
      int Pure = Target.uniform(U) ? 0 : 1;
      Ranked.push_back({C, {Pure, U.count()}});
    }
    std::sort(Ranked.begin(), Ranked.end(), [](const auto &A, const auto &B) {
      if (A.second.first != B.second.first)
        return A.second.first < B.second.first;
      if (A.second.second != B.second.second)
        return A.second.second > B.second.second;
      return A.first < B.first;
    });
    for (const auto &[C, Rank] : Ranked) {
      // Stop descending once the remainder up here is already decidable.
      BitVector U = S.selectObjects(Id, TraceSelect::Unlabeled);
      if (U.none() || Target.uniform(U))
        break;
      Self(Self, C);
    }

    // Revisit and sweep the remainder.
    BitVector U = S.selectObjects(Id, TraceSelect::Unlabeled);
    if (U.any()) {
      ++Cost.Inspections;
      labelIfUniform(S, Id, Target, Cost);
    }
  };

  Visit(Visit, L.top());
  Cost.Finished = S.allLabeled();
  return Cost;
}

StrategyCost BaselineMethod::run(Session &S, const ReferenceLabeling &Target) {
  S.clearLabels();
  StrategyCost Cost;
  // Two operations per class of identical traces: look at it, label it.
  Cost.Inspections = S.numObjects();
  Cost.LabelOps = S.numObjects();
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    S.setLabel(Obj, Target.Target[Obj]);
  Cost.Finished = true;
  return Cost;
}

StrategyCost HandLabelFallbackStrategy::run(Session &S,
                                            const ReferenceLabeling &Target) {
  TopDownStrategy TD;
  StrategyCost Cost = TD.run(S, Target);
  if (Cost.Finished)
    return Cost;
  // Hand-label what the lattice could not separate.
  for (size_t Obj : S.unlabeledObjects()) {
    ++Cost.Inspections;
    ++Cost.LabelOps;
    S.setLabel(Obj, Target.Target[Obj]);
  }
  Cost.Finished = true;
  return Cost;
}

RandomSummary cable::measureRandomMean(Session &S,
                                       const ReferenceLabeling &Target,
                                       size_t NumTrials, uint64_t Seed) {
  RandomSummary Out;
  RNG Root(Seed);
  double Total = 0;
  for (size_t Trial = 0; Trial < NumTrials; ++Trial) {
    RandomStrategy R(Root.fork());
    StrategyCost Cost = R.run(S, Target);
    if (!Cost.Finished)
      return RandomSummary{0, false};
    Total += static_cast<double>(Cost.total());
  }
  Out.MeanTotal = NumTrials == 0 ? 0 : Total / static_cast<double>(NumTrials);
  Out.Finished = true;
  return Out;
}

LowestSummary cable::measureLowestCost(
    Session &S, const ReferenceLabeling &Target, size_t NumTrials,
    uint64_t Seed,
    const std::function<std::unique_ptr<Strategy>(RNG)> &Make) {
  LowestSummary Out;
  RNG Root(Seed);
  for (size_t Trial = 0; Trial < NumTrials; ++Trial) {
    std::unique_ptr<Strategy> Strat = Make(Root.fork());
    StrategyCost Cost = Strat->run(S, Target);
    if (!Cost.Finished)
      continue;
    if (!Out.Finished || Cost.total() < Out.LowestTotal)
      Out.LowestTotal = Cost.total();
    Out.Finished = true;
  }
  return Out;
}
