//===- fa/Automaton.cpp - Finite automata over events ---------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Automaton.h"

#include "support/Dot.h"
#include "support/Error.h"

#include <cassert>

using namespace cable;

StateId Automaton::addState() {
  StateId Id = static_cast<StateId>(StartFlags.size());
  StartFlags.push_back(false);
  AcceptFlags.push_back(false);
  Outgoing.emplace_back();
  Incoming.emplace_back();
  return Id;
}

void Automaton::setStart(StateId S) {
  assert(S < numStates() && "bad state");
  StartFlags[S] = true;
}

void Automaton::setAccepting(StateId S, bool IsAccepting) {
  assert(S < numStates() && "bad state");
  AcceptFlags[S] = IsAccepting;
}

TransitionId Automaton::addTransition(StateId From, StateId To,
                                      TransitionLabel Label) {
  assert(From < numStates() && To < numStates() && "bad state");
  TransitionId Id = static_cast<TransitionId>(Transitions.size());
  Transitions.push_back(Transition{From, To, std::move(Label)});
  Outgoing[From].push_back(Id);
  Incoming[To].push_back(Id);
  return Id;
}

bool Automaton::hasEpsilons() const {
  for (const Transition &T : Transitions)
    if (T.Label.isEpsilon())
      return true;
  return false;
}

void Automaton::epsilonClose(BitVector &States) const {
  std::vector<StateId> Worklist;
  for (size_t S : States)
    Worklist.push_back(static_cast<StateId>(S));
  while (!Worklist.empty()) {
    StateId S = Worklist.back();
    Worklist.pop_back();
    for (TransitionId TI : Outgoing[S]) {
      const Transition &T = Transitions[TI];
      if (T.Label.isEpsilon() && !States.test(T.To)) {
        States.set(T.To);
        Worklist.push_back(T.To);
      }
    }
  }
}

BitVector Automaton::startSet() const {
  BitVector S(numStates());
  for (size_t I = 0; I < numStates(); ++I)
    if (StartFlags[I])
      S.set(I);
  epsilonClose(S);
  return S;
}

bool Automaton::accepts(const Trace &T, const EventTable &Table) const {
  BitVector Current = startSet();
  for (EventId EI : T.events()) {
    if (Current.none())
      return false;
    const Event &E = Table.event(EI);
    BitVector Next(numStates());
    for (size_t S : Current) {
      for (TransitionId TI : Outgoing[S]) {
        const Transition &Tr = Transitions[TI];
        if (Tr.Label.matches(E))
          Next.set(Tr.To);
      }
    }
    epsilonClose(Next);
    Current = std::move(Next);
  }
  for (size_t S : Current)
    if (AcceptFlags[S])
      return true;
  return false;
}

BitVector Automaton::executedTransitions(const Trace &T,
                                         const EventTable &Table) const {
  assert(!hasEpsilons() &&
         "executedTransitions requires an epsilon-free automaton");
  size_t N = T.size();

  // Forward[i] = states reachable from a start state consuming T[0..i).
  std::vector<BitVector> Forward(N + 1, BitVector(numStates()));
  Forward[0] = startSet();
  for (size_t I = 0; I < N; ++I) {
    const Event &E = Table.event(T[I]);
    for (size_t S : Forward[I])
      for (TransitionId TI : Outgoing[S]) {
        const Transition &Tr = Transitions[TI];
        if (Tr.Label.matches(E))
          Forward[I + 1].set(Tr.To);
      }
  }

  // Backward[i] = states from which consuming T[i..N) can reach acceptance.
  std::vector<BitVector> Backward(N + 1, BitVector(numStates()));
  for (size_t S = 0; S < numStates(); ++S)
    if (AcceptFlags[S])
      Backward[N].set(S);
  for (size_t I = N; I > 0; --I) {
    const Event &E = Table.event(T[I - 1]);
    for (size_t S = 0; S < numStates(); ++S)
      for (TransitionId TI : Outgoing[S]) {
        const Transition &Tr = Transitions[TI];
        if (Tr.Label.matches(E) && Backward[I].test(Tr.To)) {
          Backward[I - 1].set(S);
          break;
        }
      }
  }

  // A transition is executed iff it fires at some position of an accepting
  // run: its source is forward-reachable there and its target completes to
  // acceptance.
  BitVector Executed(numTransitions());
  for (size_t I = 0; I < N; ++I) {
    const Event &E = Table.event(T[I]);
    for (size_t S : Forward[I])
      for (TransitionId TI : Outgoing[S]) {
        const Transition &Tr = Transitions[TI];
        if (Tr.Label.matches(E) && Backward[I + 1].test(Tr.To))
          Executed.set(TI);
      }
  }
  return Executed;
}

Automaton Automaton::withoutEpsilons() const {
  Automaton Out;
  for (size_t S = 0; S < numStates(); ++S)
    Out.addState();

  // A state is accepting if its epsilon closure contains an accepting
  // state.
  for (size_t S = 0; S < numStates(); ++S) {
    BitVector Closure(numStates());
    Closure.set(S);
    epsilonClose(Closure);
    bool Accept = false;
    for (size_t C : Closure) {
      if (AcceptFlags[C])
        Accept = true;
      // Copy each non-epsilon transition leaving the closure back to S.
      for (TransitionId TI : Outgoing[C]) {
        const Transition &Tr = Transitions[TI];
        if (!Tr.Label.isEpsilon())
          Out.addTransition(static_cast<StateId>(S), Tr.To, Tr.Label);
      }
    }
    Out.setAccepting(static_cast<StateId>(S), Accept);
    if (StartFlags[S])
      Out.setStart(static_cast<StateId>(S));
  }
  return Out.trimmed();
}

BitVector Automaton::reachableStates() const {
  BitVector Seen(numStates());
  std::vector<StateId> Worklist;
  for (size_t S = 0; S < numStates(); ++S)
    if (StartFlags[S]) {
      Seen.set(S);
      Worklist.push_back(static_cast<StateId>(S));
    }
  while (!Worklist.empty()) {
    StateId S = Worklist.back();
    Worklist.pop_back();
    for (TransitionId TI : Outgoing[S]) {
      StateId To = Transitions[TI].To;
      if (!Seen.test(To)) {
        Seen.set(To);
        Worklist.push_back(To);
      }
    }
  }
  return Seen;
}

BitVector Automaton::coreachableStates() const {
  BitVector Seen(numStates());
  std::vector<StateId> Worklist;
  for (size_t S = 0; S < numStates(); ++S)
    if (AcceptFlags[S]) {
      Seen.set(S);
      Worklist.push_back(static_cast<StateId>(S));
    }
  while (!Worklist.empty()) {
    StateId S = Worklist.back();
    Worklist.pop_back();
    for (TransitionId TI : Incoming[S]) {
      StateId From = Transitions[TI].From;
      if (!Seen.test(From)) {
        Seen.set(From);
        Worklist.push_back(From);
      }
    }
  }
  return Seen;
}

Automaton Automaton::trimmed() const {
  BitVector Live = reachableStates();
  Live &= coreachableStates();

  Automaton Out;
  std::vector<StateId> Remap(numStates(), 0);
  for (size_t S = 0; S < numStates(); ++S)
    if (Live.test(S)) {
      Remap[S] = Out.addState();
      if (StartFlags[S])
        Out.setStart(Remap[S]);
      if (AcceptFlags[S])
        Out.setAccepting(Remap[S]);
    }
  for (const Transition &Tr : Transitions)
    if (Live.test(Tr.From) && Live.test(Tr.To))
      Out.addTransition(Remap[Tr.From], Remap[Tr.To], Tr.Label);
  return Out;
}

Automaton Automaton::disjointUnion(const Automaton &A, const Automaton &B) {
  Automaton Out;
  for (size_t S = 0; S < A.numStates(); ++S) {
    StateId Id = Out.addState();
    if (A.isStart(static_cast<StateId>(S)))
      Out.setStart(Id);
    Out.setAccepting(Id, A.isAccepting(static_cast<StateId>(S)));
  }
  StateId Offset = static_cast<StateId>(A.numStates());
  for (size_t S = 0; S < B.numStates(); ++S) {
    StateId Id = Out.addState();
    if (B.isStart(static_cast<StateId>(S)))
      Out.setStart(Id);
    Out.setAccepting(Id, B.isAccepting(static_cast<StateId>(S)));
  }
  for (const Transition &T : A.transitions())
    Out.addTransition(T.From, T.To, T.Label);
  for (const Transition &T : B.transitions())
    Out.addTransition(T.From + Offset, T.To + Offset, T.Label);
  return Out;
}

std::optional<size_t> Automaton::longestAcceptedLength() const {
  // Work on the trimmed automaton so only transitions on accepting paths
  // count; a cycle there means unbounded scenarios.
  Automaton Trim = trimmed();
  size_t N = Trim.numStates();
  if (N == 0)
    return 0;

  // Longest-path DP over a DAG, with DFS cycle detection.
  enum class Mark { White, Grey, Black };
  std::vector<Mark> Marks(N, Mark::White);
  std::vector<size_t> Longest(N, 0); // Longest path starting at the state.
  bool Cyclic = false;
  auto DFS = [&](auto &&Self, StateId S) -> void {
    Marks[S] = Mark::Grey;
    for (TransitionId TI : Trim.outgoing(S)) {
      StateId To = Trim.transition(TI).To;
      if (Marks[To] == Mark::Grey) {
        Cyclic = true;
        return;
      }
      if (Marks[To] == Mark::White)
        Self(Self, To);
      if (Cyclic)
        return;
      Longest[S] = std::max(Longest[S], Longest[To] + 1);
    }
    Marks[S] = Mark::Black;
  };

  size_t Best = 0;
  for (size_t S = 0; S < N; ++S) {
    if (!Trim.isStart(static_cast<StateId>(S)))
      continue;
    if (Marks[S] == Mark::White)
      DFS(DFS, static_cast<StateId>(S));
    if (Cyclic)
      return std::nullopt;
    Best = std::max(Best, Longest[S]);
  }
  return Best;
}

Automaton Automaton::reversed() const {
  Automaton Out;
  for (size_t S = 0; S < numStates(); ++S) {
    StateId Id = Out.addState();
    if (AcceptFlags[S])
      Out.setStart(Id);
    Out.setAccepting(Id, StartFlags[S]);
  }
  for (const Transition &T : Transitions)
    Out.addTransition(T.To, T.From, T.Label);
  return Out;
}

std::string Automaton::renderText(const EventTable &Table) const {
  std::string Out;
  Out += "states: " + std::to_string(numStates()) + "  transitions: " +
         std::to_string(numTransitions()) + "\n";
  for (size_t S = 0; S < numStates(); ++S) {
    Out += "  q" + std::to_string(S);
    if (StartFlags[S])
      Out += " [start]";
    if (AcceptFlags[S])
      Out += " [accept]";
    Out += "\n";
    for (TransitionId TI : Outgoing[S]) {
      const Transition &Tr = Transitions[TI];
      Out += "    --" + Tr.Label.render(Table) + "--> q" +
             std::to_string(Tr.To) + "  (t" + std::to_string(TI) + ")\n";
    }
  }
  return Out;
}

std::string Automaton::renderDot(const EventTable &Table,
                                 std::string_view Name) const {
  DotWriter W{std::string(Name)};
  W.addRaw("rankdir=LR;");
  for (size_t S = 0; S < numStates(); ++S) {
    std::string Id = "q" + std::to_string(S);
    W.addNode(Id, Id,
              AcceptFlags[S] ? "shape=doublecircle" : "shape=circle");
    if (StartFlags[S]) {
      std::string Entry = "entry" + std::to_string(S);
      W.addNode(Entry, "", "shape=point");
      W.addEdge(Entry, Id);
    }
  }
  for (TransitionId TI = 0; TI < Transitions.size(); ++TI) {
    const Transition &Tr = Transitions[TI];
    W.addEdge("q" + std::to_string(Tr.From), "q" + std::to_string(Tr.To),
              Tr.Label.render(Table));
  }
  return W.str();
}
