//===- fa/Label.cpp - Transition labels -----------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Label.h"

#include "support/Error.h"

using namespace cable;

TransitionLabel TransitionLabel::exact(NameId Name,
                                       std::vector<ArgPattern> Args) {
  TransitionLabel L;
  L.K = Kind::Exact;
  L.Name = Name;
  L.Args = std::move(Args);
  return L;
}

TransitionLabel TransitionLabel::exactEvent(const Event &E) {
  std::vector<ArgPattern> Args;
  Args.reserve(E.Args.size());
  for (ValueId V : E.Args)
    Args.push_back(ArgPattern::value(V));
  return exact(E.Name, std::move(Args));
}

TransitionLabel TransitionLabel::nameAny(NameId Name) {
  TransitionLabel L;
  L.K = Kind::NameAny;
  L.Name = Name;
  return L;
}

TransitionLabel TransitionLabel::wildcard() {
  TransitionLabel L;
  L.K = Kind::Wildcard;
  return L;
}

TransitionLabel TransitionLabel::epsilon() {
  TransitionLabel L;
  L.K = Kind::Epsilon;
  return L;
}

bool TransitionLabel::matches(const Event &E) const {
  switch (K) {
  case Kind::Wildcard:
    return true;
  case Kind::Epsilon:
    return false;
  case Kind::NameAny:
    return E.Name == Name;
  case Kind::Exact:
    if (E.Name != Name || E.Args.size() != Args.size())
      return false;
    for (size_t I = 0; I < Args.size(); ++I)
      if (!Args[I].matches(E.Args[I]))
        return false;
    return true;
  }
  CABLE_UNREACHABLE("bad label kind");
}

bool TransitionLabel::mentionsValue(ValueId V) const {
  if (K != Kind::Exact)
    return false;
  for (const ArgPattern &A : Args)
    if (!A.IsAny && A.Value == V)
      return true;
  return false;
}

std::string TransitionLabel::render(const EventTable &Table) const {
  switch (K) {
  case Kind::Wildcard:
    return "<any>";
  case Kind::Epsilon:
    return "<eps>";
  case Kind::NameAny:
    return Table.nameText(Name) + "(..)";
  case Kind::Exact: {
    std::string Out = Table.nameText(Name);
    if (Args.empty())
      return Out;
    Out += '(';
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I != 0)
        Out += ',';
      if (Args[I].IsAny)
        Out += '*';
      else
        Out += 'v' + std::to_string(Args[I].Value);
    }
    Out += ')';
    return Out;
  }
  }
  CABLE_UNREACHABLE("bad label kind");
}
