//===- fa/Parse.h - Automaton text format -----------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text format for automata, hand-writable and round-
/// trippable, used by cable-cli's `--ref-file` and for persisting
/// specifications:
///
///   # comment
///   start q0
///   accept q2 q3
///   q0 fopen(v0) q1      # exact label; args are v<k> or *
///   q1 ~fread q1         # any-arguments label
///   q1 <any> q2          # wildcard label
///
/// States are created on first mention; names must be q<digits> (ids need
/// not be dense — they are compacted on read).
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_FA_PARSE_H
#define CABLE_FA_PARSE_H

#include "fa/Automaton.h"
#include "support/Diagnostic.h"

#include <optional>
#include <string>
#include <string_view>

namespace cable {

/// Parses the text format; returns std::nullopt and sets \p ErrorMsg
/// (with a 1-based `line N, col C:` position) on the first malformed
/// line. Names are interned into \p Table.
std::optional<Automaton> parseAutomaton(std::string_view Text,
                                        EventTable &Table,
                                        std::string &ErrorMsg);

/// As above with a structured diagnostic; Diag.Pos carries the 1-based
/// line and the column of the offending token.
std::optional<Automaton> parseAutomaton(std::string_view Text,
                                        EventTable &Table, Diagnostic &Diag);

/// Renders \p FA in the parseAutomaton format (modulo state renumbering,
/// parse(render(FA)) accepts the same language). Epsilon transitions are
/// not representable and must be removed first.
std::string renderAutomatonText(const Automaton &FA, const EventTable &Table);

} // namespace cable

#endif // CABLE_FA_PARSE_H
