//===- fa/Regex.cpp - Event regular expressions ----------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Regex.h"

#include "support/Error.h"
#include "support/StringUtil.h"

#include <cassert>
#include <cctype>
#include <vector>

using namespace cable;

namespace {

/// Token kinds produced by the lexer.
enum class TokKind { Event, NameAny, Dot, Bar, Star, Plus, Question,
                     LBracket, RBracket, End };

struct Token {
  TokKind Kind;
  std::string Text;  // Event text or NameAny name.
  size_t Offset = 0; // 0-based start of the token within the pattern.
};

/// Lexer + recursive-descent parser + Thompson construction.
class RegexParser {
public:
  RegexParser(std::string_view Pattern, EventTable &Table)
      : Pattern(Pattern), Table(Table) {}

  std::optional<Automaton> parse(std::string &ErrorMsg) {
    if (!tokenize(ErrorMsg))
      return std::nullopt;
    Frag F = parseAlt(ErrorMsg);
    if (!Ok)
      return std::nullopt;
    if (Tokens[Pos].Kind != TokKind::End) {
      ErrorMsg = "unexpected token after end of pattern";
      ErrOffset = Tokens[Pos].Offset;
      return std::nullopt;
    }
    FA.setStart(F.Start);
    FA.setAccepting(F.Accept);
    return std::move(FA);
  }

  /// 0-based offset of the error within the pattern; valid after parse()
  /// returned std::nullopt.
  size_t errorOffset() const { return ErrOffset; }

private:
  /// A Thompson fragment: single entry, single exit.
  struct Frag {
    StateId Start = 0;
    StateId Accept = 0;
  };

  bool tokenize(std::string &ErrorMsg) {
    size_t I = 0;
    auto IsNameChar = [](char C) {
      return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
    };
    while (I < Pattern.size()) {
      char C = Pattern[I];
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++I;
        continue;
      }
      switch (C) {
      case '|':
        Tokens.push_back({TokKind::Bar, "", I});
        ++I;
        continue;
      case '*':
        Tokens.push_back({TokKind::Star, "", I});
        ++I;
        continue;
      case '+':
        Tokens.push_back({TokKind::Plus, "", I});
        ++I;
        continue;
      case '?':
        Tokens.push_back({TokKind::Question, "", I});
        ++I;
        continue;
      case '[':
        Tokens.push_back({TokKind::LBracket, "", I});
        ++I;
        continue;
      case ']':
        Tokens.push_back({TokKind::RBracket, "", I});
        ++I;
        continue;
      case '.':
        Tokens.push_back({TokKind::Dot, "", I});
        ++I;
        continue;
      case '~': {
        size_t TildeAt = I;
        size_t Start = ++I;
        while (I < Pattern.size() && IsNameChar(Pattern[I]))
          ++I;
        if (I == Start) {
          ErrorMsg = "expected a name after '~'";
          ErrOffset = TildeAt;
          return false;
        }
        Tokens.push_back({TokKind::NameAny,
                          std::string(Pattern.substr(Start, I - Start)),
                          TildeAt});
        continue;
      }
      default:
        break;
      }
      if (!IsNameChar(C)) {
        ErrorMsg = std::string("unexpected character '") + C + "'";
        ErrOffset = I;
        return false;
      }
      size_t Start = I;
      while (I < Pattern.size() && IsNameChar(Pattern[I]))
        ++I;
      // Optional argument list.
      if (I < Pattern.size() && Pattern[I] == '(') {
        size_t Close = Pattern.find(')', I);
        if (Close == std::string_view::npos) {
          ErrorMsg = "missing ')' in event";
          ErrOffset = I;
          return false;
        }
        I = Close + 1;
      }
      Tokens.push_back(
          {TokKind::Event, std::string(Pattern.substr(Start, I - Start)),
           Start});
    }
    Tokens.push_back({TokKind::End, "", Pattern.size()});
    return true;
  }

  const Token &peek() const { return Tokens[Pos]; }
  void advance() { ++Pos; }

  Frag makeEpsilon() {
    Frag F{FA.addState(), FA.addState()};
    FA.addTransition(F.Start, F.Accept, TransitionLabel::epsilon());
    return F;
  }

  Frag makeLabel(TransitionLabel L) {
    Frag F{FA.addState(), FA.addState()};
    FA.addTransition(F.Start, F.Accept, std::move(L));
    return F;
  }

  Frag fail(std::string &ErrorMsg, const std::string &Msg) {
    if (Ok) {
      Ok = false;
      ErrorMsg = Msg;
      ErrOffset = Tokens[Pos].Offset;
    }
    return Frag{0, 0};
  }

  /// Parses an Exact label from event text `name` or `name(p,...)` with
  /// argument patterns `*` or `v<digits>`.
  std::optional<TransitionLabel> parseEventLabel(const std::string &Text,
                                                 std::string &ErrorMsg) {
    size_t Paren = Text.find('(');
    if (Paren == std::string::npos)
      return TransitionLabel::exact(Table.internName(Text), {});
    std::string Name = Text.substr(0, Paren);
    assert(Text.back() == ')' && "lexer guarantees a closing paren");
    std::string ArgText = Text.substr(Paren + 1, Text.size() - Paren - 2);
    std::vector<ArgPattern> Args;
    if (!trimString(ArgText).empty()) {
      for (const std::string &Tok : splitString(ArgText, ',')) {
        std::string_view Arg = trimString(Tok);
        std::optional<unsigned long> Val;
        if (Arg.size() >= 2 && Arg[0] == 'v')
          Val = parseUnsignedLong(Arg.substr(1));
        if (Arg == "*") {
          Args.push_back(ArgPattern::any());
        } else if (Val) {
          Args.push_back(ArgPattern::value(static_cast<ValueId>(*Val)));
        } else {
          ErrorMsg = "bad argument pattern '" + std::string(Arg) + "'";
          return std::nullopt;
        }
      }
    }
    return TransitionLabel::exact(Table.internName(Name), std::move(Args));
  }

  Frag parseAtom(std::string &ErrorMsg) {
    const Token &T = peek();
    switch (T.Kind) {
    case TokKind::Event: {
      std::optional<TransitionLabel> L = parseEventLabel(T.Text, ErrorMsg);
      if (!L)
        return fail(ErrorMsg, ErrorMsg);
      advance();
      return makeLabel(std::move(*L));
    }
    case TokKind::NameAny: {
      TransitionLabel L = TransitionLabel::nameAny(Table.internName(T.Text));
      advance();
      return makeLabel(std::move(L));
    }
    case TokKind::Dot:
      advance();
      return makeLabel(TransitionLabel::wildcard());
    case TokKind::LBracket: {
      advance();
      Frag Inner = parseAlt(ErrorMsg);
      if (!Ok)
        return Inner;
      if (peek().Kind != TokKind::RBracket)
        return fail(ErrorMsg, "missing ']'");
      advance();
      return Inner;
    }
    default:
      return fail(ErrorMsg, "expected an event, '.', '~name', or '['");
    }
  }

  Frag parsePostfix(std::string &ErrorMsg) {
    Frag F = parseAtom(ErrorMsg);
    while (Ok) {
      TokKind K = peek().Kind;
      if (K != TokKind::Star && K != TokKind::Plus && K != TokKind::Question)
        break;
      advance();
      StateId S = FA.addState();
      StateId A = FA.addState();
      FA.addTransition(S, F.Start, TransitionLabel::epsilon());
      FA.addTransition(F.Accept, A, TransitionLabel::epsilon());
      if (K == TokKind::Star || K == TokKind::Plus)
        FA.addTransition(F.Accept, F.Start, TransitionLabel::epsilon());
      if (K == TokKind::Star || K == TokKind::Question)
        FA.addTransition(S, A, TransitionLabel::epsilon());
      F = Frag{S, A};
    }
    return F;
  }

  static bool startsAtom(TokKind K) {
    return K == TokKind::Event || K == TokKind::NameAny || K == TokKind::Dot ||
           K == TokKind::LBracket;
  }

  Frag parseConcat(std::string &ErrorMsg) {
    if (!startsAtom(peek().Kind))
      return makeEpsilon(); // Empty concatenation = epsilon.
    Frag F = parsePostfix(ErrorMsg);
    while (Ok && startsAtom(peek().Kind)) {
      Frag G = parsePostfix(ErrorMsg);
      if (!Ok)
        break;
      FA.addTransition(F.Accept, G.Start, TransitionLabel::epsilon());
      F = Frag{F.Start, G.Accept};
    }
    return F;
  }

  Frag parseAlt(std::string &ErrorMsg) {
    Frag F = parseConcat(ErrorMsg);
    while (Ok && peek().Kind == TokKind::Bar) {
      advance();
      Frag G = parseConcat(ErrorMsg);
      if (!Ok)
        break;
      StateId S = FA.addState();
      StateId A = FA.addState();
      FA.addTransition(S, F.Start, TransitionLabel::epsilon());
      FA.addTransition(S, G.Start, TransitionLabel::epsilon());
      FA.addTransition(F.Accept, A, TransitionLabel::epsilon());
      FA.addTransition(G.Accept, A, TransitionLabel::epsilon());
      F = Frag{S, A};
    }
    return F;
  }

  std::string_view Pattern;
  EventTable &Table;
  std::vector<Token> Tokens;
  size_t Pos = 0;
  size_t ErrOffset = 0;
  Automaton FA;
  bool Ok = true;
};

} // namespace

std::optional<Automaton> cable::compileRegex(std::string_view Pattern,
                                             EventTable &Table,
                                             std::string &ErrorMsg) {
  RegexParser P(Pattern, Table);
  return P.parse(ErrorMsg);
}

std::optional<Automaton> cable::compileRegex(std::string_view Pattern,
                                             EventTable &Table,
                                             Diagnostic &Diag) {
  RegexParser P(Pattern, Table);
  std::string ErrorMsg;
  std::optional<Automaton> FA = P.parse(ErrorMsg);
  if (!FA) {
    Diag.Level = Severity::Error;
    Diag.Code = ErrorCode::ParseError;
    Diag.Pos.Line = 1; // Patterns are single-line.
    Diag.Pos.Col = static_cast<uint32_t>(P.errorOffset() + 1);
    Diag.Message = std::move(ErrorMsg);
  }
  return FA;
}

Automaton cable::compileRegexOrDie(std::string_view Pattern,
                                   EventTable &Table) {
  std::string ErrorMsg;
  std::optional<Automaton> FA = compileRegex(Pattern, Table, ErrorMsg);
  if (!FA) {
    std::string Msg = "bad regex '" + std::string(Pattern) + "': " + ErrorMsg;
    reportFatalError(Msg.c_str());
  }
  return FA->withoutEpsilons();
}
