//===- fa/Templates.h - Reference-FA templates ------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the reference-FA templates of §4.1, which the paper's users
/// select when starting a Focus sub-session:
///
///  - Unordered:       (event0 | event1 | ... | eventn)*
///  - Name projection: (event0(..X..) | ... | eventn(..X..) | wildcard)*
///  - Seed order:      (e0|...|en)* ; seed ; (e0|...|en)*
///
/// plus a prefix-tree acceptor (an FA recognizing exactly a trace set) and
/// the trivial all-traces FA. All builders produce epsilon-free automata,
/// so their transitions can serve directly as FCA attributes.
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_FA_TEMPLATES_H
#define CABLE_FA_TEMPLATES_H

#include "fa/Automaton.h"
#include "trace/TraceSet.h"

#include <vector>

namespace cable {

/// Returns the distinct events of \p Traces in first-appearance order (the
/// `event0 ... eventn` of the templates).
std::vector<EventId> templateAlphabet(const std::vector<Trace> &Traces);

/// Unordered template: one state, start+accepting, one self-loop per event
/// in \p Alphabet. Distinguishes traces only by which events they contain
/// (§4.1: "work well when correct traces and erroneous traces often contain
/// different events").
Automaton makeUnorderedFA(const std::vector<EventId> &Alphabet,
                          const EventTable &Table);

/// Name-projection template for canonical value \p V: one state with a
/// self-loop for each alphabet event that mentions \p V, plus a wildcard
/// self-loop. Lets the user "check correctness with respect to one name at
/// a time".
Automaton makeNameProjectionFA(const std::vector<EventId> &Alphabet,
                               ValueId V, const EventTable &Table);

/// Seed-order template: distinguishes events occurring before the first
/// possible \p Seed occurrence from events after it. Accepts exactly the
/// traces containing at least one \p Seed event.
Automaton makeSeedOrderFA(const std::vector<EventId> &Alphabet, EventId Seed,
                          const EventTable &Table);

/// Prefix-tree acceptor recognizing exactly the traces of \p Traces.
Automaton makePrefixTreeFA(const std::vector<Trace> &Traces,
                           const EventTable &Table);

/// The "FA that recognizes all possible traces" (§2.1 Step 1a notes this
/// works too): alias of the unordered template over \p Alphabet.
Automaton makeAllTracesFA(const std::vector<EventId> &Alphabet,
                          const EventTable &Table);

} // namespace cable

#endif // CABLE_FA_TEMPLATES_H
