//===- fa/Dfa.cpp - Deterministic automata over a finite alphabet ---------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Dfa.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace cable;

std::vector<EventId> cable::collectAlphabet(const std::vector<Trace> &Traces) {
  std::vector<EventId> Alphabet;
  std::unordered_set<EventId> Seen;
  for (const Trace &T : Traces)
    for (EventId E : T.events())
      if (Seen.insert(E).second)
        Alphabet.push_back(E);
  return Alphabet;
}

size_t Dfa::symbolIndex(EventId E) const {
  for (size_t I = 0; I < Alphabet.size(); ++I)
    if (Alphabet[I] == E)
      return I;
  return static_cast<size_t>(-1);
}

Dfa Dfa::determinize(const Automaton &NFA, const std::vector<EventId> &Alphabet,
                     const EventTable &Table) {
  Dfa Out;
  Out.Alphabet = Alphabet;

  // Map from NFA state set to DFA state id.
  std::unordered_map<BitVector, StateId, BitVectorHash> StateIds;
  std::vector<BitVector> Sets;

  auto GetState = [&](const BitVector &Set) -> StateId {
    auto It = StateIds.find(Set);
    if (It != StateIds.end())
      return It->second;
    StateId Id = static_cast<StateId>(Sets.size());
    StateIds.emplace(Set, Id);
    Sets.push_back(Set);
    bool Accept = false;
    for (size_t S : Set)
      if (NFA.isAccepting(static_cast<StateId>(S)))
        Accept = true;
    Out.Accepting.push_back(Accept);
    Out.Delta.emplace_back(Alphabet.size(), 0);
    return Id;
  };

  Out.Start = GetState(NFA.startSet());
  for (StateId D = 0; D < Sets.size(); ++D) {
    // Sets may grow while we iterate; index, don't hold references.
    for (size_t A = 0; A < Alphabet.size(); ++A) {
      const Event &E = Table.event(Alphabet[A]);
      BitVector Next(NFA.numStates());
      BitVector Cur = Sets[D];
      for (size_t S : Cur)
        for (TransitionId TI : NFA.outgoing(static_cast<StateId>(S))) {
          const Transition &Tr = NFA.transition(TI);
          if (Tr.Label.matches(E))
            Next.set(Tr.To);
        }
      NFA.epsilonClose(Next);
      Out.Delta[D][A] = GetState(Next);
    }
  }
  return Out;
}

bool Dfa::accepts(const Trace &T) const {
  StateId S = Start;
  for (EventId E : T.events()) {
    size_t A = symbolIndex(E);
    if (A == static_cast<size_t>(-1))
      return false;
    S = Delta[S][A];
  }
  return Accepting[S];
}

Dfa Dfa::trimUnreachable() const {
  size_t M = Alphabet.size();
  std::vector<bool> Seen(numStates(), false);
  std::vector<StateId> Stack{Start};
  Seen[Start] = true;
  while (!Stack.empty()) {
    StateId S = Stack.back();
    Stack.pop_back();
    for (size_t A = 0; A < M; ++A)
      if (!Seen[Delta[S][A]]) {
        Seen[Delta[S][A]] = true;
        Stack.push_back(Delta[S][A]);
      }
  }
  std::vector<StateId> Remap(numStates(), 0);
  Dfa Out;
  Out.Alphabet = Alphabet;
  for (size_t S = 0; S < numStates(); ++S)
    if (Seen[S]) {
      Remap[S] = static_cast<StateId>(Out.Accepting.size());
      Out.Accepting.push_back(Accepting[S]);
    }
  Out.Delta.assign(Out.Accepting.size(), std::vector<StateId>(M, 0));
  for (size_t S = 0; S < numStates(); ++S) {
    if (!Seen[S])
      continue;
    for (size_t A = 0; A < M; ++A)
      Out.Delta[Remap[S]][A] = Remap[Delta[S][A]];
  }
  Out.Start = Remap[Start];
  return Out;
}

Dfa Dfa::minimized() const {
  // Refine only the reachable part; unreachable states (from product
  // constructions) must not survive into the "minimal" DFA.
  {
    Dfa Reachable = trimUnreachable();
    if (Reachable.numStates() != numStates())
      return Reachable.minimized();
  }
  size_t N = numStates();
  // Moore refinement: start from the accepting/rejecting split and refine
  // by successor blocks until stable.
  std::vector<uint32_t> Block(N);
  for (size_t S = 0; S < N; ++S)
    Block[S] = Accepting[S] ? 1 : 0;
  size_t NumBlocks = 2;

  for (;;) {
    // Signature of a state: its block plus the blocks of its successors.
    std::map<std::vector<uint32_t>, uint32_t> SigIds;
    std::vector<uint32_t> NewBlock(N);
    for (size_t S = 0; S < N; ++S) {
      std::vector<uint32_t> Sig;
      Sig.reserve(Alphabet.size() + 1);
      Sig.push_back(Block[S]);
      for (size_t A = 0; A < Alphabet.size(); ++A)
        Sig.push_back(Block[Delta[S][A]]);
      auto [It, Inserted] =
          SigIds.emplace(std::move(Sig), static_cast<uint32_t>(SigIds.size()));
      (void)Inserted;
      NewBlock[S] = It->second;
    }
    if (SigIds.size() == NumBlocks) {
      Block = std::move(NewBlock);
      break;
    }
    NumBlocks = SigIds.size();
    Block = std::move(NewBlock);
  }

  Dfa Out;
  Out.Alphabet = Alphabet;
  Out.Accepting.assign(NumBlocks, false);
  Out.Delta.assign(NumBlocks, std::vector<StateId>(Alphabet.size(), 0));
  for (size_t S = 0; S < N; ++S) {
    Out.Accepting[Block[S]] = Accepting[S];
    for (size_t A = 0; A < Alphabet.size(); ++A)
      Out.Delta[Block[S]][A] = Block[Delta[S][A]];
  }
  Out.Start = Block[Start];
  return Out;
}

Dfa Dfa::minimizedHopcroft() const {
  size_t N = numStates();
  size_t M = Alphabet.size();

  // Inverse transition lists per symbol.
  std::vector<std::vector<std::vector<StateId>>> Preds(
      M, std::vector<std::vector<StateId>>(N));
  for (StateId S = 0; S < N; ++S)
    for (size_t A = 0; A < M; ++A)
      Preds[A][Delta[S][A]].push_back(S);

  // Partition: block id per state, member lists per block.
  std::vector<uint32_t> BlockOf(N);
  std::vector<std::vector<StateId>> Members;
  {
    std::vector<StateId> Acc, Rej;
    for (StateId S = 0; S < N; ++S)
      (Accepting[S] ? Acc : Rej).push_back(S);
    if (!Rej.empty()) {
      for (StateId S : Rej)
        BlockOf[S] = static_cast<uint32_t>(Members.size());
      Members.push_back(std::move(Rej));
    }
    if (!Acc.empty()) {
      for (StateId S : Acc)
        BlockOf[S] = static_cast<uint32_t>(Members.size());
      Members.push_back(std::move(Acc));
    }
  }

  // Worklist of splitter blocks (by id). Seeding with every initial block
  // is correct (the "smaller half" rule is only an optimization).
  std::vector<uint32_t> Worklist;
  for (uint32_t B = 0; B < Members.size(); ++B)
    Worklist.push_back(B);

  std::vector<size_t> TouchCount(Members.size(), 0);
  while (!Worklist.empty()) {
    uint32_t Splitter = Worklist.back();
    Worklist.pop_back();
    // Copy: Members may be reallocated during splitting.
    std::vector<StateId> SplitterStates = Members[Splitter];
    for (size_t A = 0; A < M; ++A) {
      // X = states leading into the splitter on symbol A.
      std::vector<StateId> X;
      for (StateId T : SplitterStates)
        for (StateId P : Preds[A][T])
          X.push_back(P);
      if (X.empty())
        continue;
      // Count touched states per block.
      TouchCount.assign(Members.size(), 0);
      for (StateId P : X)
        ++TouchCount[BlockOf[P]];
      // Deduplicate X per block is unnecessary: Preds lists are disjoint
      // over T for a fixed A since Delta is a function.
      std::vector<uint32_t> ToSplit;
      for (StateId P : X) {
        uint32_t B = BlockOf[P];
        if (TouchCount[B] != 0 && TouchCount[B] < Members[B].size())
          ToSplit.push_back(B);
      }
      std::sort(ToSplit.begin(), ToSplit.end());
      ToSplit.erase(std::unique(ToSplit.begin(), ToSplit.end()),
                    ToSplit.end());
      if (ToSplit.empty())
        continue;
      std::vector<bool> InX(N, false);
      for (StateId P : X)
        InX[P] = true;
      for (uint32_t B : ToSplit) {
        std::vector<StateId> Inside, Outside;
        for (StateId S : Members[B])
          (InX[S] ? Inside : Outside).push_back(S);
        uint32_t NewId = static_cast<uint32_t>(Members.size());
        // Keep the larger part in B, move the smaller to a new block,
        // and enqueue the smaller one (classic Hopcroft rule; enqueueing
        // B as well when it was pending keeps correctness trivial).
        std::vector<StateId> &Smaller =
            Inside.size() <= Outside.size() ? Inside : Outside;
        std::vector<StateId> &Larger =
            Inside.size() <= Outside.size() ? Outside : Inside;
        for (StateId S : Smaller)
          BlockOf[S] = NewId;
        Members[B] = std::move(Larger);
        Members.push_back(std::move(Smaller));
        TouchCount.push_back(0);
        Worklist.push_back(NewId);
        Worklist.push_back(B);
      }
    }
  }

  Dfa Out;
  Out.Alphabet = Alphabet;
  Out.Accepting.assign(Members.size(), false);
  Out.Delta.assign(Members.size(), std::vector<StateId>(M, 0));
  for (StateId S = 0; S < N; ++S) {
    Out.Accepting[BlockOf[S]] = Accepting[S];
    for (size_t A = 0; A < M; ++A)
      Out.Delta[BlockOf[S]][A] = BlockOf[Delta[S][A]];
  }
  Out.Start = BlockOf[Start];

  // Drop blocks unreachable from the start (Hopcroft refines the whole
  // state set, including states nothing can reach).
  return Out.trimUnreachable();
}

Dfa Dfa::minimizeBrzozowski(const Automaton &NFA,
                            const std::vector<EventId> &Alphabet,
                            const EventTable &Table) {
  // det(rev(det(rev(A)))) yields the minimal accessible DFA.
  Automaton R1 = NFA.reversed();
  Dfa D1 = determinize(R1, Alphabet, Table);
  Automaton A1 = D1.toAutomaton(Table);
  Automaton R2 = A1.reversed();
  return determinize(R2, Alphabet, Table);
}

Dfa Dfa::complemented() const {
  Dfa Out = *this;
  for (size_t S = 0; S < Out.Accepting.size(); ++S)
    Out.Accepting[S] = !Out.Accepting[S];
  return Out;
}

Dfa Dfa::product(const Dfa &A, const Dfa &B, bool WantUnion) {
  assert(A.Alphabet == B.Alphabet && "product requires matching alphabets");
  Dfa Out;
  Out.Alphabet = A.Alphabet;
  size_t NB = B.numStates();
  auto Pair = [NB](StateId X, StateId Y) {
    return static_cast<StateId>(X * NB + Y);
  };
  size_t N = A.numStates() * NB;
  Out.Accepting.assign(N, false);
  Out.Delta.assign(N, std::vector<StateId>(Out.Alphabet.size(), 0));
  for (StateId X = 0; X < A.numStates(); ++X)
    for (StateId Y = 0; Y < NB; ++Y) {
      StateId P = Pair(X, Y);
      Out.Accepting[P] = WantUnion
                             ? (A.Accepting[X] || B.Accepting[Y])
                             : (A.Accepting[X] && B.Accepting[Y]);
      for (size_t S = 0; S < Out.Alphabet.size(); ++S)
        Out.Delta[P][S] = Pair(A.Delta[X][S], B.Delta[Y][S]);
    }
  Out.Start = Pair(A.Start, B.Start);
  return Out;
}

bool Dfa::equivalent(const Dfa &A, const Dfa &B) {
  assert(A.Alphabet == B.Alphabet &&
         "equivalence requires matching alphabets");
  // BFS over the pair graph looking for an acceptance mismatch.
  std::unordered_set<uint64_t> Seen;
  std::vector<std::pair<StateId, StateId>> Worklist;
  auto Push = [&](StateId X, StateId Y) {
    uint64_t Key = (static_cast<uint64_t>(X) << 32) | Y;
    if (Seen.insert(Key).second)
      Worklist.emplace_back(X, Y);
  };
  Push(A.Start, B.Start);
  while (!Worklist.empty()) {
    auto [X, Y] = Worklist.back();
    Worklist.pop_back();
    if (A.Accepting[X] != B.Accepting[Y])
      return false;
    for (size_t S = 0; S < A.Alphabet.size(); ++S)
      Push(A.Delta[X][S], B.Delta[Y][S]);
  }
  return true;
}

std::optional<Trace> Dfa::shortestDifference(const Dfa &A, const Dfa &B) {
  assert(A.Alphabet == B.Alphabet &&
         "difference witness requires matching alphabets");
  // BFS over pair states, remembering how each pair was reached.
  struct Step {
    uint64_t FromKey = 0;
    size_t Symbol = 0;
  };
  auto Key = [](StateId X, StateId Y) {
    return (static_cast<uint64_t>(X) << 32) | Y;
  };
  std::unordered_map<uint64_t, Step> Parent;
  std::deque<std::pair<StateId, StateId>> Queue;
  uint64_t StartKey = Key(A.Start, B.Start);
  Parent.emplace(StartKey, Step{StartKey, 0});
  Queue.emplace_back(A.Start, B.Start);

  while (!Queue.empty()) {
    auto [X, Y] = Queue.front();
    Queue.pop_front();
    if (A.Accepting[X] != B.Accepting[Y]) {
      // Reconstruct the symbol path back to the start.
      std::vector<EventId> Events;
      uint64_t Cur = Key(X, Y);
      while (Cur != StartKey) {
        const Step &S = Parent.at(Cur);
        Events.push_back(A.Alphabet[S.Symbol]);
        Cur = S.FromKey;
      }
      std::reverse(Events.begin(), Events.end());
      return Trace(std::move(Events));
    }
    for (size_t Sym = 0; Sym < A.Alphabet.size(); ++Sym) {
      StateId NX = A.Delta[X][Sym];
      StateId NY = B.Delta[Y][Sym];
      uint64_t K = Key(NX, NY);
      if (Parent.emplace(K, Step{Key(X, Y), Sym}).second)
        Queue.emplace_back(NX, NY);
    }
  }
  return std::nullopt;
}

bool Dfa::subsetOf(const Dfa &A, const Dfa &B) {
  // A ⊆ B iff A ∩ ¬B is empty.
  return product(A, B.complemented(), /*WantUnion=*/false).isEmpty();
}

bool Dfa::isEmpty() const {
  // BFS from the start; accepting state reachable => nonempty.
  std::vector<bool> Seen(numStates(), false);
  std::vector<StateId> Worklist{Start};
  Seen[Start] = true;
  while (!Worklist.empty()) {
    StateId S = Worklist.back();
    Worklist.pop_back();
    if (Accepting[S])
      return false;
    for (size_t A = 0; A < Alphabet.size(); ++A) {
      StateId To = Delta[S][A];
      if (!Seen[To]) {
        Seen[To] = true;
        Worklist.push_back(To);
      }
    }
  }
  return true;
}

BitVector Dfa::liveStates() const {
  // Live = reachable from start AND co-reachable to an accepting state.
  size_t N = numStates();
  BitVector Reach(N);
  {
    std::vector<StateId> Worklist{Start};
    Reach.set(Start);
    while (!Worklist.empty()) {
      StateId S = Worklist.back();
      Worklist.pop_back();
      for (size_t A = 0; A < Alphabet.size(); ++A) {
        StateId To = Delta[S][A];
        if (!Reach.test(To)) {
          Reach.set(To);
          Worklist.push_back(To);
        }
      }
    }
  }
  BitVector CoReach(N);
  {
    // Reverse edges once.
    std::vector<std::vector<StateId>> Rev(N);
    for (StateId S = 0; S < N; ++S)
      for (size_t A = 0; A < Alphabet.size(); ++A)
        Rev[Delta[S][A]].push_back(S);
    std::vector<StateId> Worklist;
    for (StateId S = 0; S < N; ++S)
      if (Accepting[S]) {
        CoReach.set(S);
        Worklist.push_back(S);
      }
    while (!Worklist.empty()) {
      StateId S = Worklist.back();
      Worklist.pop_back();
      for (StateId From : Rev[S])
        if (!CoReach.test(From)) {
          CoReach.set(From);
          Worklist.push_back(From);
        }
    }
  }
  Reach &= CoReach;
  return Reach;
}

size_t Dfa::numLiveStates() const { return liveStates().count(); }

Automaton Dfa::toAutomaton(const EventTable &Table) const {
  BitVector Live = liveStates();
  Automaton Out;
  std::vector<StateId> Remap(numStates(), 0);
  for (size_t S = 0; S < numStates(); ++S)
    if (Live.test(S)) {
      Remap[S] = Out.addState();
      if (Accepting[S])
        Out.setAccepting(Remap[S]);
    }
  if (Live.test(Start))
    Out.setStart(Remap[Start]);
  else if (Out.numStates() == 0) {
    // Empty language: a single non-accepting start state.
    StateId S = Out.addState();
    Out.setStart(S);
    return Out;
  }
  for (size_t S = 0; S < numStates(); ++S) {
    if (!Live.test(S))
      continue;
    for (size_t A = 0; A < Alphabet.size(); ++A) {
      StateId To = Delta[S][A];
      if (Live.test(To))
        Out.addTransition(
            Remap[S], Remap[To],
            TransitionLabel::exactEvent(Table.event(Alphabet[A])));
    }
  }
  return Out;
}
