//===- fa/Regex.h - Event regular expressions -------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small regular-expression language over trace events, compiled to an
/// Automaton by Thompson construction. The paper's users hand Cable FAs
/// when focusing (§4.1); this is the concrete syntax our CLI and tests use
/// to write them:
///
///   atom     := EVENT          e.g. fopen(v0), fclose(*), pclose(v0)
///             | ~NAME          any-arguments event with this name
///             | .              any event (wildcard)
///             | [ regex ]      grouping (square brackets; parentheses
///                              belong to event syntax)
///   postfix  := atom (* | + | ?)*
///   concat   := postfix postfix ...   (whitespace separated)
///   regex    := concat | concat | ...
///
/// Example — the paper's buggy stdio specification (Fig. 1):
///   `[fopen(v0) | popen(v0)] [fread(v0) | fwrite(v0)]* fclose(v0)`
///
/// The produced automaton contains epsilon transitions; callers that need
/// an epsilon-free FA (e.g. to use it as a reference FA) should apply
/// Automaton::withoutEpsilons().
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_FA_REGEX_H
#define CABLE_FA_REGEX_H

#include "fa/Automaton.h"
#include "support/Diagnostic.h"

#include <optional>
#include <string>
#include <string_view>

namespace cable {

/// Compiles \p Pattern to an automaton (with epsilons). Returns
/// std::nullopt and sets \p ErrorMsg on a syntax error. Event names and
/// events are interned into \p Table.
std::optional<Automaton> compileRegex(std::string_view Pattern,
                                      EventTable &Table,
                                      std::string &ErrorMsg);

/// As above with a structured diagnostic: Diag.Pos.Col is the 1-based
/// offset of the offending character or token within \p Pattern (patterns
/// are single-line, so Diag.Pos.Line is always 1).
std::optional<Automaton> compileRegex(std::string_view Pattern,
                                      EventTable &Table, Diagnostic &Diag);

/// Convenience: compiles \p Pattern and returns the epsilon-free, trimmed
/// automaton. Aborts on syntax errors — use only with hardcoded literal
/// patterns (protocol models, benchmarks); anything user-supplied must go
/// through compileRegex and surface the diagnostic instead.
Automaton compileRegexOrDie(std::string_view Pattern, EventTable &Table);

} // namespace cable

#endif // CABLE_FA_REGEX_H
