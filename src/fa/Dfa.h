//===- fa/Dfa.h - Deterministic automata over a finite alphabet -*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic finite automata over an explicit, finite event alphabet.
///
/// Pattern labels (wildcard, any-args) make a fully general product of two
/// NFAs awkward, but every use in this system — language comparison,
/// minimization for Table 1's state counts, complementation to check fixes
/// — happens over the finite set of concrete events occurring in the traces
/// under study. So all language-level algorithms run on a Dfa obtained by
/// subset construction against that alphabet.
///
/// A Dfa is always *complete*: every state has a successor on every
/// alphabet symbol (a dead state is materialized on demand).
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_FA_DFA_H
#define CABLE_FA_DFA_H

#include "fa/Automaton.h"

#include <optional>
#include <vector>

namespace cable {

/// A complete DFA over an explicit alphabet of concrete events.
class Dfa {
public:
  /// Builds by subset construction from \p NFA, restricted to \p Alphabet.
  /// Label patterns are expanded against the concrete events.
  static Dfa determinize(const Automaton &NFA,
                         const std::vector<EventId> &Alphabet,
                         const EventTable &Table);

  size_t numStates() const { return Accepting.size(); }
  StateId start() const { return Start; }
  bool isAccepting(StateId S) const { return Accepting[S]; }
  const std::vector<EventId> &alphabet() const { return Alphabet; }

  /// Successor of \p S on the \p SymbolIdx-th alphabet symbol.
  StateId next(StateId S, size_t SymbolIdx) const {
    return Delta[S][SymbolIdx];
  }

  /// Returns true if the DFA accepts \p T. Events outside the alphabet make
  /// the trace rejected.
  bool accepts(const Trace &T) const;

  /// Moore partition refinement; returns the minimal equivalent complete
  /// DFA over the same alphabet.
  Dfa minimized() const;

  /// Hopcroft's O(n log n) minimization. Language-equivalent to
  /// minimized() with the same state count; kept separately so the two
  /// implementations cross-validate each other.
  Dfa minimizedHopcroft() const;

  /// Brzozowski minimization of \p NFA: reverse, determinize, reverse,
  /// determinize. A third independent way to reach the minimal DFA.
  static Dfa minimizeBrzozowski(const Automaton &NFA,
                                const std::vector<EventId> &Alphabet,
                                const EventTable &Table);

  /// Returns the complement (accepting flags flipped; completeness makes
  /// this the true complement over Alphabet*).
  Dfa complemented() const;

  /// Product construction. \p WantUnion selects union vs intersection.
  /// Both operands must share the same alphabet (same EventIds in the same
  /// order).
  static Dfa product(const Dfa &A, const Dfa &B, bool WantUnion);

  /// Returns true if the two DFAs accept the same language. Alphabets must
  /// match.
  static bool equivalent(const Dfa &A, const Dfa &B);

  /// A shortest trace on which the two DFAs disagree, or std::nullopt when
  /// they are equivalent. This is the Step 2b witness: when the checked
  /// labeling produces the wrong language, the difference shows up as a
  /// concrete trace that is wrongly present or wrongly absent.
  static std::optional<Trace> shortestDifference(const Dfa &A, const Dfa &B);

  /// Language inclusion: true iff every trace \p A accepts, \p B accepts
  /// too. Alphabets must match.
  static bool subsetOf(const Dfa &A, const Dfa &B);

  /// Returns true if no string is accepted.
  bool isEmpty() const;

  /// Converts back to an Automaton (Exact labels; the dead state and other
  /// useless states are trimmed away). Minimizing then converting is how
  /// Table 1's state/transition counts are produced.
  Automaton toAutomaton(const EventTable &Table) const;

  /// Counts states that are not dead (can still reach acceptance); this is
  /// the conventional "number of states" of a trimmed FA.
  size_t numLiveStates() const;

private:
  StateId Start = 0;
  std::vector<bool> Accepting;
  std::vector<std::vector<StateId>> Delta; // Delta[state][symbolIdx]
  std::vector<EventId> Alphabet;

  /// Index of \p E in Alphabet, or npos.
  size_t symbolIndex(EventId E) const;

  /// Drops states unreachable from the start (products create them;
  /// minimization must not count them).
  Dfa trimUnreachable() const;

  BitVector liveStates() const;
};

/// Collects the distinct events appearing in \p Traces, in first-appearance
/// order — the standard alphabet for language-level comparisons.
std::vector<EventId> collectAlphabet(const std::vector<Trace> &Traces);

} // namespace cable

#endif // CABLE_FA_DFA_H
