//===- fa/Parse.cpp - Automaton text format ---------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Parse.h"

#include "support/Error.h"
#include "support/StringUtil.h"

#include <cassert>
#include <unordered_map>

using namespace cable;

namespace {

/// Parses a label token: `<any>`, `~name`, `name`, or `name(p,...)` with
/// patterns `*` / `v<digits>`.
std::optional<TransitionLabel> parseLabel(std::string_view Text,
                                          EventTable &Table,
                                          std::string &ErrorMsg) {
  if (Text == "<any>" || Text == ".")
    return TransitionLabel::wildcard();
  if (!Text.empty() && Text[0] == '~') {
    std::string_view Name = Text.substr(1);
    if (Name.empty()) {
      ErrorMsg = "expected a name after '~'";
      return std::nullopt;
    }
    return TransitionLabel::nameAny(Table.internName(Name));
  }
  size_t Paren = Text.find('(');
  if (Paren == std::string_view::npos) {
    if (Text.empty() || Text.find(')') != std::string_view::npos) {
      ErrorMsg = "bad label '" + std::string(Text) + "'";
      return std::nullopt;
    }
    return TransitionLabel::exact(Table.internName(Text), {});
  }
  if (Text.back() != ')') {
    ErrorMsg = "missing ')' in label '" + std::string(Text) + "'";
    return std::nullopt;
  }
  std::string_view Name = Text.substr(0, Paren);
  if (Name.empty()) {
    ErrorMsg = "missing name in label '" + std::string(Text) + "'";
    return std::nullopt;
  }
  std::string_view ArgText = Text.substr(Paren + 1, Text.size() - Paren - 2);
  std::vector<ArgPattern> Args;
  if (!trimString(ArgText).empty()) {
    for (const std::string &Tok : splitString(std::string(ArgText), ',')) {
      std::string_view Arg = trimString(Tok);
      std::optional<unsigned long> Val;
      if (Arg.size() >= 2 && Arg[0] == 'v')
        Val = parseUnsignedLong(Arg.substr(1));
      if (Arg == "*") {
        Args.push_back(ArgPattern::any());
      } else if (Val) {
        Args.push_back(ArgPattern::value(static_cast<ValueId>(*Val)));
      } else {
        ErrorMsg = "bad argument pattern '" + std::string(Arg) + "'";
        return std::nullopt;
      }
    }
  }
  return TransitionLabel::exact(Table.internName(Name), std::move(Args));
}

/// Parses `q<digits>`; returns npos on failure (including overflow).
size_t parseStateName(std::string_view Text) {
  if (Text.size() < 2 || Text[0] != 'q')
    return static_cast<size_t>(-1);
  std::optional<unsigned long> N = parseUnsignedLong(Text.substr(1));
  if (!N)
    return static_cast<size_t>(-1);
  return *N;
}

} // namespace

std::optional<Automaton> cable::parseAutomaton(std::string_view Text,
                                               EventTable &Table,
                                               std::string &ErrorMsg) {
  Diagnostic Diag;
  std::optional<Automaton> FA = parseAutomaton(Text, Table, Diag);
  if (!FA)
    ErrorMsg = "line " + std::to_string(Diag.Pos.Line) + ", col " +
               std::to_string(Diag.Pos.Col) + ": " + Diag.Message;
  return FA;
}

std::optional<Automaton> cable::parseAutomaton(std::string_view Text,
                                               EventTable &Table,
                                               Diagnostic &Diag) {
  Automaton FA;
  std::unordered_map<size_t, StateId> StateOf;
  auto GetState = [&](size_t Name) {
    auto It = StateOf.find(Name);
    if (It != StateOf.end())
      return It->second;
    StateId Id = FA.addState();
    StateOf.emplace(Name, Id);
    return Id;
  };

  size_t LineNo = 0;
  for (const std::string &Line : splitString(Text, '\n')) {
    ++LineNo;
    // Strip trailing comments.
    std::string Body = Line;
    if (size_t Hash = Body.find('#'); Hash != std::string::npos)
      Body.resize(Hash);
    std::vector<TokenSpan> Tok = splitWhitespaceSpans(Body);
    if (Tok.empty())
      continue;
    // Columns are 1-based and point at the start of the offending token.
    auto Fail = [&](size_t TokIdx, const std::string &Msg) {
      Diag.Level = Severity::Error;
      Diag.Code = ErrorCode::ParseError;
      Diag.Pos.Line = static_cast<uint32_t>(LineNo);
      Diag.Pos.Col = static_cast<uint32_t>(Tok[TokIdx].Offset + 1);
      Diag.Message = Msg;
      return std::nullopt;
    };

    if (Tok[0].Text == "start" || Tok[0].Text == "accept") {
      if (Tok.size() < 2)
        return Fail(0, "expected state names after '" + Tok[0].Text + "'");
      for (size_t I = 1; I < Tok.size(); ++I) {
        size_t Name = parseStateName(Tok[I].Text);
        if (Name == static_cast<size_t>(-1))
          return Fail(I, "bad state name '" + Tok[I].Text + "'");
        StateId S = GetState(Name);
        if (Tok[0].Text == "start")
          FA.setStart(S);
        else
          FA.setAccepting(S);
      }
      continue;
    }

    // Transition: `qFrom label qTo`.
    if (Tok.size() != 3)
      return Fail(0, "expected 'qFrom label qTo'");
    size_t From = parseStateName(Tok[0].Text);
    if (From == static_cast<size_t>(-1))
      return Fail(0, "bad state name '" + Tok[0].Text + "' in transition");
    size_t To = parseStateName(Tok[2].Text);
    if (To == static_cast<size_t>(-1))
      return Fail(2, "bad state name '" + Tok[2].Text + "' in transition");
    std::string LabelError;
    std::optional<TransitionLabel> Label =
        parseLabel(Tok[1].Text, Table, LabelError);
    if (!Label)
      return Fail(1, LabelError);
    FA.addTransition(GetState(From), GetState(To), std::move(*Label));
  }
  return FA;
}

std::string cable::renderAutomatonText(const Automaton &FA,
                                       const EventTable &Table) {
  assert(!FA.hasEpsilons() && "epsilon transitions are not representable");
  std::string Out;
  std::string Starts, Accepts;
  for (size_t S = 0; S < FA.numStates(); ++S) {
    if (FA.isStart(static_cast<StateId>(S)))
      Starts += " q" + std::to_string(S);
    if (FA.isAccepting(static_cast<StateId>(S)))
      Accepts += " q" + std::to_string(S);
  }
  if (!Starts.empty())
    Out += "start" + Starts + "\n";
  if (!Accepts.empty())
    Out += "accept" + Accepts + "\n";
  for (const Transition &T : FA.transitions()) {
    std::string Label;
    switch (T.Label.kind()) {
    case TransitionLabel::Kind::Wildcard:
      Label = "<any>";
      break;
    case TransitionLabel::Kind::NameAny:
      Label = "~" + Table.nameText(T.Label.name());
      break;
    case TransitionLabel::Kind::Exact:
      Label = T.Label.render(Table);
      break;
    case TransitionLabel::Kind::Epsilon:
      CABLE_UNREACHABLE("epsilon transition in renderAutomatonText");
    }
    Out += "q" + std::to_string(T.From) + " " + Label + " q" +
           std::to_string(T.To) + "\n";
  }
  return Out;
}
