//===- fa/Parse.cpp - Automaton text format ---------------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Parse.h"

#include "support/Error.h"
#include "support/StringUtil.h"

#include <cassert>
#include <unordered_map>

using namespace cable;

namespace {

/// Parses a label token: `<any>`, `~name`, `name`, or `name(p,...)` with
/// patterns `*` / `v<digits>`.
std::optional<TransitionLabel> parseLabel(std::string_view Text,
                                          EventTable &Table,
                                          std::string &ErrorMsg) {
  if (Text == "<any>" || Text == ".")
    return TransitionLabel::wildcard();
  if (!Text.empty() && Text[0] == '~') {
    std::string_view Name = Text.substr(1);
    if (Name.empty()) {
      ErrorMsg = "expected a name after '~'";
      return std::nullopt;
    }
    return TransitionLabel::nameAny(Table.internName(Name));
  }
  size_t Paren = Text.find('(');
  if (Paren == std::string_view::npos) {
    if (Text.empty() || Text.find(')') != std::string_view::npos) {
      ErrorMsg = "bad label '" + std::string(Text) + "'";
      return std::nullopt;
    }
    return TransitionLabel::exact(Table.internName(Text), {});
  }
  if (Text.back() != ')') {
    ErrorMsg = "missing ')' in label '" + std::string(Text) + "'";
    return std::nullopt;
  }
  std::string_view Name = Text.substr(0, Paren);
  if (Name.empty()) {
    ErrorMsg = "missing name in label '" + std::string(Text) + "'";
    return std::nullopt;
  }
  std::string_view ArgText = Text.substr(Paren + 1, Text.size() - Paren - 2);
  std::vector<ArgPattern> Args;
  if (!trimString(ArgText).empty()) {
    for (const std::string &Tok : splitString(std::string(ArgText), ',')) {
      std::string_view Arg = trimString(Tok);
      if (Arg == "*") {
        Args.push_back(ArgPattern::any());
      } else if (Arg.size() >= 2 && Arg[0] == 'v' &&
                 isAllDigits(Arg.substr(1))) {
        Args.push_back(ArgPattern::value(
            static_cast<ValueId>(std::stoul(std::string(Arg.substr(1))))));
      } else {
        ErrorMsg = "bad argument pattern '" + std::string(Arg) + "'";
        return std::nullopt;
      }
    }
  }
  return TransitionLabel::exact(Table.internName(Name), std::move(Args));
}

/// Parses `q<digits>`; returns npos on failure.
size_t parseStateName(std::string_view Text) {
  if (Text.size() < 2 || Text[0] != 'q' || !isAllDigits(Text.substr(1)))
    return static_cast<size_t>(-1);
  return std::stoul(std::string(Text.substr(1)));
}

} // namespace

std::optional<Automaton> cable::parseAutomaton(std::string_view Text,
                                               EventTable &Table,
                                               std::string &ErrorMsg) {
  Automaton FA;
  std::unordered_map<size_t, StateId> StateOf;
  auto GetState = [&](size_t Name) {
    auto It = StateOf.find(Name);
    if (It != StateOf.end())
      return It->second;
    StateId Id = FA.addState();
    StateOf.emplace(Name, Id);
    return Id;
  };

  size_t LineNo = 0;
  for (const std::string &Line : splitString(Text, '\n')) {
    ++LineNo;
    // Strip trailing comments.
    std::string Body = Line;
    if (size_t Hash = Body.find('#'); Hash != std::string::npos)
      Body.resize(Hash);
    std::vector<std::string> Tok = splitWhitespace(Body);
    if (Tok.empty())
      continue;
    auto Fail = [&](const std::string &Msg) {
      ErrorMsg = "line " + std::to_string(LineNo) + ": " + Msg;
      return std::nullopt;
    };

    if (Tok[0] == "start" || Tok[0] == "accept") {
      if (Tok.size() < 2)
        return Fail("expected state names after '" + Tok[0] + "'");
      for (size_t I = 1; I < Tok.size(); ++I) {
        size_t Name = parseStateName(Tok[I]);
        if (Name == static_cast<size_t>(-1))
          return Fail("bad state name '" + Tok[I] + "'");
        StateId S = GetState(Name);
        if (Tok[0] == "start")
          FA.setStart(S);
        else
          FA.setAccepting(S);
      }
      continue;
    }

    // Transition: `qFrom label qTo`.
    if (Tok.size() != 3)
      return Fail("expected 'qFrom label qTo'");
    size_t From = parseStateName(Tok[0]);
    size_t To = parseStateName(Tok[2]);
    if (From == static_cast<size_t>(-1) || To == static_cast<size_t>(-1))
      return Fail("bad state name in transition");
    std::string LabelError;
    std::optional<TransitionLabel> Label =
        parseLabel(Tok[1], Table, LabelError);
    if (!Label)
      return Fail(LabelError);
    FA.addTransition(GetState(From), GetState(To), std::move(*Label));
  }
  return FA;
}

std::string cable::renderAutomatonText(const Automaton &FA,
                                       const EventTable &Table) {
  assert(!FA.hasEpsilons() && "epsilon transitions are not representable");
  std::string Out;
  std::string Starts, Accepts;
  for (size_t S = 0; S < FA.numStates(); ++S) {
    if (FA.isStart(static_cast<StateId>(S)))
      Starts += " q" + std::to_string(S);
    if (FA.isAccepting(static_cast<StateId>(S)))
      Accepts += " q" + std::to_string(S);
  }
  if (!Starts.empty())
    Out += "start" + Starts + "\n";
  if (!Accepts.empty())
    Out += "accept" + Accepts + "\n";
  for (const Transition &T : FA.transitions()) {
    std::string Label;
    switch (T.Label.kind()) {
    case TransitionLabel::Kind::Wildcard:
      Label = "<any>";
      break;
    case TransitionLabel::Kind::NameAny:
      Label = "~" + Table.nameText(T.Label.name());
      break;
    case TransitionLabel::Kind::Exact:
      Label = T.Label.render(Table);
      break;
    case TransitionLabel::Kind::Epsilon:
      CABLE_UNREACHABLE("epsilon transition in renderAutomatonText");
    }
    Out += "q" + std::to_string(T.From) + " " + Label + " q" +
           std::to_string(T.To) + "\n";
  }
  return Out;
}
