//===- fa/Automaton.h - Finite automata over events -------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The finite-automaton representation for temporal specifications and
/// reference FAs.
///
/// An Automaton is a nondeterministic FA whose transitions carry
/// TransitionLabels (event patterns). It may have several start states and
/// several accepting states. Besides acceptance, it computes the paper's
/// central relation R (§3.2): `executedTransitions(o)` returns the set of
/// transitions that lie on *some* accepting sequence of transitions for the
/// trace o — exactly the attribute set concept analysis clusters on.
///
/// Transitions are identified by their insertion index; that index is the
/// FCA attribute id throughout the system, so transitions are never removed
/// once added (build a fresh automaton instead — see trimmed()).
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_FA_AUTOMATON_H
#define CABLE_FA_AUTOMATON_H

#include "fa/Label.h"
#include "support/BitVector.h"
#include "trace/Trace.h"

#include <optional>
#include <string>
#include <vector>

namespace cable {

/// Automaton state index.
using StateId = uint32_t;

/// Automaton transition index; doubles as the FCA attribute id.
using TransitionId = uint32_t;

/// One transition of an Automaton.
struct Transition {
  StateId From = 0;
  StateId To = 0;
  TransitionLabel Label;
};

/// A nondeterministic finite automaton over trace events.
class Automaton {
public:
  /// Adds a state; returns its id. States start neither initial nor
  /// accepting.
  StateId addState();

  /// Marks \p S as a start state.
  void setStart(StateId S);

  /// Marks \p S as accepting (or not).
  void setAccepting(StateId S, bool IsAccepting = true);

  /// Adds a transition; returns its id (= FCA attribute id).
  TransitionId addTransition(StateId From, StateId To, TransitionLabel Label);

  size_t numStates() const { return StartFlags.size(); }
  size_t numTransitions() const { return Transitions.size(); }

  bool isStart(StateId S) const { return StartFlags[S]; }
  bool isAccepting(StateId S) const { return AcceptFlags[S]; }
  const Transition &transition(TransitionId T) const { return Transitions[T]; }
  const std::vector<Transition> &transitions() const { return Transitions; }

  /// Transition ids leaving \p S.
  const std::vector<TransitionId> &outgoing(StateId S) const {
    return Outgoing[S];
  }

  /// Transition ids entering \p S.
  const std::vector<TransitionId> &incoming(StateId S) const {
    return Incoming[S];
  }

  /// Returns true if any transition is an epsilon transition.
  bool hasEpsilons() const;

  /// Returns the set of start states, epsilon-closed.
  BitVector startSet() const;

  /// Epsilon-closes \p States in place.
  void epsilonClose(BitVector &States) const;

  /// Returns true if the automaton accepts \p T.
  bool accepts(const Trace &T, const EventTable &Table) const;

  /// Computes the paper's relation R for trace \p T: the set of transitions
  /// that appear on at least one accepting run over \p T. Empty if the
  /// trace is not accepted. Requires an epsilon-free automaton.
  BitVector executedTransitions(const Trace &T, const EventTable &Table) const;

  /// Returns an equivalent epsilon-free automaton. Transition ids are NOT
  /// preserved.
  Automaton withoutEpsilons() const;

  /// Returns an equivalent automaton keeping only states both reachable
  /// from a start state and co-reachable to an accepting state. Transition
  /// ids are NOT preserved.
  Automaton trimmed() const;

  /// States reachable from the start set (following all transitions,
  /// ignoring labels).
  BitVector reachableStates() const;

  /// States from which some accepting state is reachable.
  BitVector coreachableStates() const;

  /// Disjoint union: both automata side by side, all start and accepting
  /// states kept. Accepts the union of the two languages; the executed-
  /// transition relation R becomes the union of both relations, which is
  /// how two similarity views are combined into one reference FA.
  static Automaton disjointUnion(const Automaton &A, const Automaton &B);

  /// Returns the reversal: every transition flipped, start and accepting
  /// states exchanged. Accepts exactly the reversed strings.
  Automaton reversed() const;

  /// The length of the longest accepted string, or std::nullopt when the
  /// automaton has a productive cycle (unbounded scenarios). §5.1 reports
  /// this per specification: "the longest scenario through each FA is very
  /// short, usually less than ten events long". Returns 0 for automata
  /// accepting at most the empty trace.
  std::optional<size_t> longestAcceptedLength() const;

  /// Renders a readable text listing (one transition per line).
  std::string renderText(const EventTable &Table) const;

  /// Renders Graphviz DOT (accepting states as double circles; start states
  /// get an arrow from a point node).
  std::string renderDot(const EventTable &Table, std::string_view Name) const;

private:
  std::vector<bool> StartFlags;
  std::vector<bool> AcceptFlags;
  std::vector<Transition> Transitions;
  std::vector<std::vector<TransitionId>> Outgoing;
  std::vector<std::vector<TransitionId>> Incoming;
};

} // namespace cable

#endif // CABLE_FA_AUTOMATON_H
