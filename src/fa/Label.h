//===- fa/Label.h - Transition labels ---------------------------*- C++ -*-===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Labels on automaton transitions. A label matches trace events. Four
/// kinds:
///
///  - Exact:    a specific interaction name with per-argument patterns
///              (a concrete canonical value, or "any value");
///  - NameAny:  a specific name, any arguments;
///  - Wildcard: any event (the `wildcard` of the paper's name-projection
///              template, §4.1);
///  - Epsilon:  matches nothing, consumed silently (used only by the regex
///              builder; reference FAs are epsilon-free).
///
//===----------------------------------------------------------------------===//

#ifndef CABLE_FA_LABEL_H
#define CABLE_FA_LABEL_H

#include "trace/Event.h"
#include "trace/EventTable.h"

#include <string>
#include <vector>

namespace cable {

/// Pattern for one event argument.
struct ArgPattern {
  bool IsAny = true;
  ValueId Value = 0;

  static ArgPattern any() { return ArgPattern{true, 0}; }
  static ArgPattern value(ValueId V) { return ArgPattern{false, V}; }

  bool matches(ValueId V) const { return IsAny || Value == V; }
  bool operator==(const ArgPattern &RHS) const {
    return IsAny == RHS.IsAny && (IsAny || Value == RHS.Value);
  }
};

/// A transition label.
class TransitionLabel {
public:
  enum class Kind { Exact, NameAny, Wildcard, Epsilon };

  /// Builds an Exact label matching \p Name with argument patterns \p Args.
  static TransitionLabel exact(NameId Name, std::vector<ArgPattern> Args);

  /// Builds an Exact label matching the concrete event \p E.
  static TransitionLabel exactEvent(const Event &E);

  /// Builds a NameAny label.
  static TransitionLabel nameAny(NameId Name);

  /// Builds the wildcard label.
  static TransitionLabel wildcard();

  /// Builds the epsilon label.
  static TransitionLabel epsilon();

  Kind kind() const { return K; }
  bool isEpsilon() const { return K == Kind::Epsilon; }

  NameId name() const { return Name; }
  const std::vector<ArgPattern> &args() const { return Args; }

  /// Returns true if this label matches event \p E. Epsilon matches no
  /// event.
  bool matches(const Event &E) const;

  /// Returns true if the label mentions canonical value \p V in some
  /// argument pattern (used by the name-projection template).
  bool mentionsValue(ValueId V) const;

  bool operator==(const TransitionLabel &RHS) const {
    return K == RHS.K && Name == RHS.Name && Args == RHS.Args;
  }

  /// Renders the label: `eventname(v0,*)`, `eventname(*ANY*)` for NameAny,
  /// `<any>` for wildcard, `<eps>` for epsilon.
  std::string render(const EventTable &Table) const;

private:
  Kind K = Kind::Wildcard;
  NameId Name = 0;
  std::vector<ArgPattern> Args;
};

} // namespace cable

#endif // CABLE_FA_LABEL_H
