//===- fa/Templates.cpp - Reference-FA templates ---------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "fa/Templates.h"

#include "fa/Dfa.h"

#include <map>

using namespace cable;

std::vector<EventId>
cable::templateAlphabet(const std::vector<Trace> &Traces) {
  return collectAlphabet(Traces);
}

Automaton cable::makeUnorderedFA(const std::vector<EventId> &Alphabet,
                                 const EventTable &Table) {
  Automaton FA;
  StateId Q = FA.addState();
  FA.setStart(Q);
  FA.setAccepting(Q);
  for (EventId E : Alphabet)
    FA.addTransition(Q, Q, TransitionLabel::exactEvent(Table.event(E)));
  return FA;
}

Automaton cable::makeNameProjectionFA(const std::vector<EventId> &Alphabet,
                                      ValueId V, const EventTable &Table) {
  Automaton FA;
  StateId Q = FA.addState();
  FA.setStart(Q);
  FA.setAccepting(Q);
  for (EventId E : Alphabet) {
    TransitionLabel L = TransitionLabel::exactEvent(Table.event(E));
    if (L.mentionsValue(V))
      FA.addTransition(Q, Q, std::move(L));
  }
  FA.addTransition(Q, Q, TransitionLabel::wildcard());
  return FA;
}

Automaton cable::makeSeedOrderFA(const std::vector<EventId> &Alphabet,
                                 EventId Seed, const EventTable &Table) {
  Automaton FA;
  StateId Before = FA.addState();
  StateId After = FA.addState();
  FA.setStart(Before);
  FA.setAccepting(After);
  for (EventId E : Alphabet) {
    FA.addTransition(Before, Before,
                     TransitionLabel::exactEvent(Table.event(E)));
    FA.addTransition(After, After,
                     TransitionLabel::exactEvent(Table.event(E)));
  }
  FA.addTransition(Before, After,
                   TransitionLabel::exactEvent(Table.event(Seed)));
  return FA;
}

Automaton cable::makePrefixTreeFA(const std::vector<Trace> &Traces,
                                  const EventTable &Table) {
  Automaton FA;
  StateId Root = FA.addState();
  FA.setStart(Root);
  // Child map per state, keyed by event.
  std::vector<std::map<EventId, StateId>> Children(1);
  for (const Trace &T : Traces) {
    StateId Cur = Root;
    for (EventId E : T.events()) {
      auto It = Children[Cur].find(E);
      if (It == Children[Cur].end()) {
        StateId Next = FA.addState();
        Children.emplace_back();
        FA.addTransition(Cur, Next,
                         TransitionLabel::exactEvent(Table.event(E)));
        Children[Cur].emplace(E, Next);
        Cur = Next;
      } else {
        Cur = It->second;
      }
    }
    FA.setAccepting(Cur);
  }
  return FA;
}

Automaton cable::makeAllTracesFA(const std::vector<EventId> &Alphabet,
                                 const EventTable &Table) {
  return makeUnorderedFA(Alphabet, Table);
}
