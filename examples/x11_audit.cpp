//===- examples/x11_audit.cpp - Auditing programs with debugged specs ------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// What the debugged specifications are *for* (§5.1: "The debugged
// specifications found a total of 199 bugs, including resource leaks,
// potential races, and performance bugs"): run the full loop for every
// protocol in the evaluation suite —
//
//   mine -> debug with Cable -> re-learn -> verify fresh program runs —
//
// and report the program errors each debugged specification finds in a
// previously unseen set of runs, categorized by error family.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"
#include "cable/Strategies.h"
#include "learner/SkStrings.h"
#include "support/RNG.h"
#include "support/StringUtil.h"
#include "verifier/Verifier.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"
#include "workload/ReferenceFA.h"

#include <cstdio>

using namespace cable;

int main() {
  std::printf("Auditing fresh program runs with Cable-debugged "
              "specifications\n\n");
  std::printf("%-15s %8s %8s %10s %10s\n", "Specification", "checked",
              "flagged", "real-bugs", "false-pos");
  std::printf("%-15s %8s %8s %10s %10s\n", "---------------", "-------",
              "-------", "---------", "---------");

  size_t TotalBugs = 0, TotalFalse = 0;
  for (const ProtocolModel &Model : allProtocols()) {
    EventTable Table;
    WorkloadGenerator Gen(Model, Table);
    RNG Rand(0xA0D17 ^ std::hash<std::string>{}(Model.Name));

    // Training phase: mine scenarios and debug them.
    TraceSet Training =
        Gen.generateScenarios(Rand, Model.NumRuns * Model.ScenariosPerRun);
    Automaton Ref =
        makeProtocolReferenceFA(Training.traces(), Training.table(), Model);
    Session S(std::move(Training), std::move(Ref));
    Oracle Truth(Model, S.table());
    ReferenceLabeling Target = Truth.referenceLabeling(S);
    ExpertSimStrategy Expert;
    if (!Expert.run(S, Target).Finished) {
      std::printf("%-15s labeling failed\n", Model.Name.c_str());
      continue;
    }
    LabelId Good = S.internLabel("good");
    std::vector<Trace> GoodTraces;
    for (size_t Obj : S.objectsWithLabel(Good))
      GoodTraces.push_back(S.object(Obj));
    // s = 0.5 merges more aggressively than s = 1.0; the extra
    // generalization cuts false positives on unseen correct scenarios
    // (the miner-parameter tuning §2.2 mentions).
    SkStringsOptions Learn;
    Learn.S = 0.5;
    Automaton Debugged = learnSkStringsFA(GoodTraces, S.table(), Learn);

    // Audit phase: fresh, unseen runs.
    EventTable AuditTable = S.table();
    WorkloadGenerator AuditGen(Model, AuditTable);
    RNG AuditRand(Rand.fork());
    TraceSet AuditRuns = AuditGen.generateRuns(AuditRand);
    ExtractorOptions Extract;
    Extract.SeedNames = Model.Seeds;
    Extract.TransitiveValues = true;
    VerificationResult R = verifyAgainstRuns(AuditRuns, Debugged, Extract);

    // Score the reports against ground truth. A flagged trace that the
    // oracle also rejects is a real program error; an accepted-but-
    // erroneous trace would be a miss.
    Oracle AuditTruth(Model, R.Violations.table());
    size_t RealBugs = 0, FalsePositives = 0;
    for (const Trace &T : R.Violations.traces()) {
      if (AuditTruth.isCorrect(T, R.Violations.table()))
        ++FalsePositives; // Debugged spec too narrow for this trace.
      else
        ++RealBugs;
    }
    TotalBugs += RealBugs;
    TotalFalse += FalsePositives;
    std::printf("%-15s %8zu %8zu %10zu %10zu\n", Model.Name.c_str(),
                R.NumScenarios, R.Violations.size(), RealBugs,
                FalsePositives);
  }

  std::printf("\ntotal real program errors found across the suite: %zu "
              "(false positives: %zu)\n",
              TotalBugs, TotalFalse);
  std::printf("(the paper's corrected specifications found 199 bugs in "
              "widely distributed X11 programs)\n");
  return 0;
}
