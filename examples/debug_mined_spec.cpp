//===- examples/debug_mined_spec.cpp - The §2.2 walkthrough ----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Debugging a mined specification — the paper's second worked example:
//
//   1. Strauss mines a specification from buggy training runs; because
//      erroneous scenarios are in the training set, the mined FA accepts
//      them too (and is more complicated than a correct FA would be);
//   2. an expert clusters the *scenario traces* against the mined FA
//      itself (Step 1a: "He already has one") and labels concepts;
//   3. instead of fixing the FA by hand, the expert reruns the miner's
//      back end on the traces labeled good;
//   4. the overgeneralization defense: several kinds of `good` labels
//      (good_fopen / good_popen) and one re-mining run per label.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"
#include "cable/Strategies.h"
#include "cable/WellFormed.h"
#include "fa/Templates.h"
#include "miner/Miner.h"
#include "support/RNG.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"

#include <cstdio>

using namespace cable;

int main() {
  // -- Mine from buggy training data ---------------------------------------
  ProtocolModel Model = stdioProtocol();
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(22);
  TraceSet Runs = Gen.generateRuns(Rand);

  MinerOptions Options;
  Options.Extract.SeedNames = Model.Seeds;
  Options.Learn.S = 1.0;
  Miner M(Options);
  MiningResult Mined = M.mine(Runs, "stdio");
  std::printf("mined specification: %zu states, %zu transitions "
              "(from %zu scenario traces)\n",
              Mined.Spec.numStates(), Mined.Spec.numTransitions(),
              Mined.Scenarios.size());

  Oracle Truth(Model, Mined.Scenarios.table());
  size_t BadAccepted = 0, BadTotal = 0;
  for (const Trace &T : Mined.Scenarios.traces()) {
    if (Truth.isCorrect(T, Mined.Scenarios.table()))
      continue;
    ++BadTotal;
    BadAccepted += Mined.Spec.FA.accepts(T, Mined.Scenarios.table());
  }
  std::printf("the problem: the mined FA accepts %zu of the %zu erroneous "
              "scenarios in its training set\n\n",
              BadAccepted, BadTotal);

  // -- Cluster the scenario traces against the mined FA --------------------
  Session S(Mined.Scenarios, Mined.Spec.FA);
  std::printf("session: %zu unique scenario classes, %zu concepts "
              "(reference FA = the mined FA, §2.2)\n",
              S.numObjects(), S.lattice().size());

  // -- Label with several kinds of good labels (§2.2's defense) ------------
  ReferenceLabeling Target =
      Truth.referenceLabeling(S, /*Variants=*/true);
  WellFormedness WF = checkWellFormed(S, Target);
  std::printf("lattice well-formed for {good_fopen, good_popen, bad}: %s\n",
              WF.LatticeWellFormed ? "yes" : "no");
  if (!WF.LatticeWellFormed) {
    // §4.3's remedy: focus with a different FA. The unordered template
    // separates these labels (they depend only on which events occur).
    std::printf("focusing the whole lattice with the unordered template "
                "(§4.3 remedy)...\n");
    std::vector<Trace> Reps;
    for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
      Reps.push_back(S.object(Obj));
    FocusSession F = S.focus(S.lattice().top(),
                             makeUnorderedFA(templateAlphabet(Reps),
                                             S.table()));
    ReferenceLabeling SubTarget =
        Truth.referenceLabeling(F.Sub, /*Variants=*/true);
    TopDownStrategy TD;
    StrategyCost Cost = TD.run(F.Sub, SubTarget);
    std::printf("focused labeling: %zu ops (%s)\n", Cost.total(),
                Cost.Finished ? "finished" : "failed");
    S.mergeBack(F);
  } else {
    ExpertSimStrategy Expert;
    StrategyCost Cost = Expert.run(S, Target);
    std::printf("expert labeling: %zu ops (%s)\n", Cost.total(),
                Cost.Finished ? "finished" : "failed");
  }
  if (!S.allLabeled()) {
    std::printf("labeling incomplete; aborting\n");
    return 1;
  }

  // -- Rerun the back end per good label ------------------------------------
  std::printf("\nre-mining one specification per good label:\n");
  for (LabelId L = 0; L < S.numLabels(); ++L) {
    const std::string &Name = S.labelName(L);
    if (Name.rfind("good", 0) != 0)
      continue;
    std::vector<Trace> Family;
    for (size_t Obj : S.objectsWithLabel(L))
      Family.push_back(S.object(Obj));
    if (Family.empty())
      continue;
    Specification Spec = M.learn(Family, S.table(), Name);
    std::printf("\n  specification '%s' (%zu traces -> %zu states, %zu "
                "transitions):\n",
                Name.c_str(), Family.size(), Spec.numStates(),
                Spec.numTransitions());

    // Every family trace accepted; every erroneous scenario rejected.
    size_t Accepted = 0;
    for (const Trace &T : Family)
      Accepted += Spec.FA.accepts(T, S.table());
    size_t BadRejected = 0, Bad = 0;
    for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
      if (S.labelName(*S.labelOf(Obj)) != "bad")
        continue;
      ++Bad;
      BadRejected += !Spec.FA.accepts(S.object(Obj), S.table());
    }
    std::printf("  accepts %zu/%zu of its family, rejects %zu/%zu "
                "erroneous scenario classes\n",
                Accepted, Family.size(), BadRejected, Bad);
  }

  std::printf("\ndone: the union of the per-label specifications is the "
              "debugged stdio rule\n(fopen pairs with fclose, popen with "
              "pclose).\n");
  return 0;
}
