//===- examples/quickstart.cpp - Cable in 80 lines -------------------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The smallest end-to-end use of the library: take a handful of scenario
// traces (some erroneous), cluster them against a reference FA, label the
// clusters, and learn the corrected specification from the traces labeled
// good.
//
//===----------------------------------------------------------------------===//

#include "Cable.h"

#include <cstdio>

using namespace cable;

int main() {
  // 1. A few scenario traces. Two protocols are mixed together and two of
  //    the traces are erroneous (a pipe closed with fclose, and a leak).
  std::string ErrorMsg;
  std::optional<TraceSet> Traces = TraceSet::parse(R"(
    fopen(v0) fread(v0) fclose(v0)
    fopen(v0) fwrite(v0) fclose(v0)
    popen(v0) fread(v0) pclose(v0)
    popen(v0) fwrite(v0) pclose(v0)
    popen(v0) fread(v0) fclose(v0)
    fopen(v0) fread(v0)
  )",
                                                   ErrorMsg);
  if (!Traces) {
    std::fprintf(stderr, "parse error: %s\n", ErrorMsg.c_str());
    return 1;
  }

  // 2. A reference FA to define trace similarity. The unordered template
  //    (one self-loop per event) is often enough; here we want ordering of
  //    open/close to matter, so learn a small FA from the traces instead.
  Automaton RefFA = learnSkStringsFA(Traces->traces(), Traces->table());

  // 3. Cluster with concept analysis.
  Session S(std::move(*Traces), std::move(RefFA));
  std::printf("lattice has %zu concepts over %zu unique traces\n",
              S.lattice().size(), S.numObjects());
  for (Session::NodeId Id = 0; Id < S.lattice().size(); ++Id)
    std::printf("  %s\n", S.describeConcept(Id).c_str());

  // 4. Label concepts instead of traces. Find the concept of all traces
  //    that execute pclose and mark them good en masse; then sweep the
  //    leftovers.
  LabelId Good = S.internLabel("good");
  LabelId Bad = S.internLabel("bad");
  for (Session::NodeId Id = 0; Id < S.lattice().size(); ++Id) {
    // A concept is "the pclose traces" if every member ends with pclose.
    BitVector Members = S.selectObjects(Id, TraceSelect::All);
    if (Members.none())
      continue;
    bool AllGood = true;
    for (size_t Obj : Members) {
      const Trace &T = S.object(Obj);
      std::string Last =
          T.empty() ? ""
                    : S.table().nameText(S.table().event(T[T.size() - 1]).Name);
      bool EndsClosed = (Last == "pclose") ||
                        (Last == "fclose" &&
                         S.table().nameText(
                             S.table().event(T[0]).Name) == "fopen");
      if (!EndsClosed)
        AllGood = false;
    }
    if (AllGood)
      S.labelTraces(Id, TraceSelect::Unlabeled, Good);
  }
  // Everything still unlabeled is erroneous: label it at the top concept.
  S.labelTraces(S.lattice().top(), TraceSelect::Unlabeled, Bad);

  // 5. Learn the corrected specification from the good traces.
  Automaton Fixed = S.showFA(S.lattice().top(), TraceSelect::WithLabel, Good);
  std::printf("\ncorrected specification:\n%s",
              Fixed.renderText(S.table()).c_str());

  std::printf("\nlattice in DOT (render with graphviz):\n%s",
              S.renderDot("quickstart").c_str());
  return 0;
}
