//===- examples/debug_by_testing.cpp - The §2.1 walkthrough ----------------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Debugging a specification by testing it against a program — the paper's
// first worked example, end to end:
//
//   1. a verification tool checks the buggy Fig. 1 stdio specification
//      against a program (synthetic runs) and reports violation traces;
//   2. Cable clusters the violations with concept analysis (Step 1);
//   3. the specification author explores the lattice exactly as §2.1
//      narrates: finds the popen concept, sees it is mixed, labels the
//      popen-and-pclose child good, revisits the popen concept and labels
//      the remainder bad, then handles the fopen side;
//   4. the author checks the labeling (Step 2b) and fixes the spec by
//      accepting the good traces (Step 3).
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"
#include "fa/Dfa.h"
#include "fa/Regex.h"
#include "fa/Templates.h"
#include "support/RNG.h"
#include "verifier/Verifier.h"
#include "workload/Generator.h"

#include <algorithm>
#include <cstdio>

using namespace cable;

namespace {

/// Finds the unique concept whose extent is exactly the traces executing
/// all the events named in \p Names (the author's "traces that execute
/// X = popen()" navigation).
std::optional<Session::NodeId>
conceptOfEvents(Session &S, std::initializer_list<const char *> Names) {
  BitVector Want(S.referenceFA().numTransitions());
  for (const char *Name : Names) {
    std::optional<NameId> Id = S.table().lookupName(Name);
    if (!Id)
      return std::nullopt;
    for (TransitionId TI = 0; TI < S.referenceFA().numTransitions(); ++TI)
      if (S.referenceFA().transition(TI).Label.name() == *Id &&
          S.referenceFA().transition(TI).Label.kind() ==
              TransitionLabel::Kind::Exact)
        Want.set(TI);
  }
  // The wanted concept has extent tau(Want).
  BitVector Extent = S.context().tau(Want);
  return S.lattice().findByExtent(Extent);
}

} // namespace

int main() {
  // -- The program and the buggy specification ----------------------------
  ProtocolModel Model = stdioProtocol();
  EventTable Table;
  WorkloadGenerator Gen(Model, Table);
  RNG Rand(2003);
  TraceSet Runs = Gen.generateRuns(Rand);

  Automaton Buggy = compileRegexOrDie(stdioBuggyRegex(), Runs.table());
  std::printf("buggy specification (Fig. 1): %s\n\n",
              stdioBuggyRegex().c_str());

  // -- Step 0: the verifier reports violation traces ----------------------
  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  VerificationResult R = verifyAgainstRuns(Runs, Buggy, Extract);
  std::printf("verifier: %zu scenarios, %zu violation traces\n\n",
              R.NumScenarios, R.Violations.size());

  // -- Step 1: cluster the violations --------------------------------------
  Automaton Ref = makeUnorderedFA(templateAlphabet(R.Violations.traces()),
                                  R.Violations.table());
  Session S(std::move(R.Violations), std::move(Ref));
  std::printf("lattice: %zu concepts over %zu unique violation traces\n\n",
              S.lattice().size(), S.numObjects());

  LabelId Good = S.internLabel("good");
  LabelId Bad = S.internLabel("bad");

  // -- Step 2a: the author's §2.1 exploration ------------------------------
  // "Suppose that the author first looks at the concept that contains
  // traces that execute X = popen()."
  std::optional<Session::NodeId> PopenC = conceptOfEvents(S, {"popen"});
  if (!PopenC) {
    std::printf("unexpected: no popen concept\n");
    return 1;
  }
  std::printf("the popen concept: %s\n", S.describeConcept(*PopenC).c_str());
  std::printf("its FA summary is mixed, so look below at the children.\n\n");

  // "the first child concept ... contains just traces that execute both
  // X = popen() and pclose(X). These traces are correct."
  std::optional<Session::NodeId> PopenPclose =
      conceptOfEvents(S, {"popen", "pclose"});
  if (!PopenPclose) {
    std::printf("unexpected: no popen+pclose concept\n");
    return 1;
  }
  size_t N = S.labelTraces(*PopenPclose, TraceSelect::Unlabeled, Good);
  std::printf("label good: %zu traces executing popen and pclose (%s)\n", N,
              S.describeConcept(*PopenPclose).c_str());

  // "Finally, the author revisits the concept that contains traces that
  // execute X = popen() ... These traces execute X = popen() but not
  // pclose(X), so they are erroneous."
  N = S.labelTraces(*PopenC, TraceSelect::Unlabeled, Bad);
  std::printf("label bad:  %zu remaining popen traces (leaks, wrong "
              "close)\n\n",
              N);

  // "The traces that execute X = fopen() remain, and the author labels
  // these in a similar fashion." Violating fopen traces are erroneous:
  // either leaked or closed with pclose.
  std::optional<Session::NodeId> FopenC = conceptOfEvents(S, {"fopen"});
  if (FopenC) {
    N = S.labelTraces(*FopenC, TraceSelect::Unlabeled, Bad);
    std::printf("label bad:  %zu violating fopen traces\n", N);
  }
  N = S.labelTraces(S.lattice().top(), TraceSelect::Unlabeled, Bad);
  if (N)
    std::printf("label bad:  %zu stragglers at the top concept\n", N);
  std::printf("all traces labeled: %s\n\n", S.allLabeled() ? "yes" : "no");

  // -- Step 2b: check the labeling -----------------------------------------
  Automaton GoodFA = S.showFA(S.lattice().top(), TraceSelect::WithLabel, Good);
  std::printf("check (Step 2b): FA over the good traces:\n%s\n",
              GoodFA.renderText(S.table()).c_str());

  // -- Step 3: fix the specification ---------------------------------------
  // The fixed specification accepts the old language plus the good traces:
  // union over the observed alphabet, then minimize.
  std::vector<Trace> AllTraces;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj)
    AllTraces.push_back(S.object(Obj));
  std::vector<EventId> Alphabet = collectAlphabet(AllTraces);
  EventTable &T = S.table();
  // The union must be taken over the buggy spec's events too — fclose
  // never occurs in a violation trace (fclose-terminated scenarios are
  // what the buggy spec accepts), yet the fixed language still needs it.
  for (const Transition &Tr : Buggy.transitions()) {
    const TransitionLabel &L = Tr.Label;
    if (L.kind() != TransitionLabel::Kind::Exact)
      continue;
    Event E;
    E.Name = L.name();
    bool Concrete = true;
    for (const ArgPattern &A : L.args()) {
      if (A.IsAny) {
        Concrete = false;
        break;
      }
      E.Args.push_back(A.Value);
    }
    if (!Concrete)
      continue;
    EventId Id = T.internEvent(E);
    if (std::find(Alphabet.begin(), Alphabet.end(), Id) == Alphabet.end())
      Alphabet.push_back(Id);
  }

  // §2 Step 3: "fixes his specification so that it accepts all good
  // traces and continues to reject all bad traces" — mechanically:
  // (buggy ∪ good) ∩ ¬bad. Without the subtraction the union would keep
  // accepting the popen/fclose traces Fig. 1 wrongly allowed (running
  // this example with union only makes shortestDifference expose exactly
  // that witness).
  Automaton BadFA = S.showFA(S.lattice().top(), TraceSelect::WithLabel, Bad);
  Dfa Old = Dfa::determinize(Buggy, Alphabet, T);
  Dfa Add = Dfa::determinize(GoodFA, Alphabet, T);
  Dfa Sub = Dfa::determinize(BadFA, Alphabet, T);
  Dfa Fixed = Dfa::product(Dfa::product(Old, Add, /*WantUnion=*/true),
                           Sub.complemented(), /*WantUnion=*/false)
                  .minimized();
  Automaton FixedFA = Fixed.toAutomaton(T);
  std::printf("fixed specification ((buggy ∪ good) ∩ ¬bad), minimized "
              "(Fig. 6 shape):\n%s\n",
              FixedFA.renderText(T).c_str());

  // Validate: correct popen scenarios now accepted, bad ones still
  // rejected.
  size_t Ok = 0;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    bool Accepts = FixedFA.accepts(S.object(Obj), T);
    bool IsGood = *S.labelOf(Obj) == Good;
    Ok += (Accepts == (IsGood || Buggy.accepts(S.object(Obj), T)));
  }
  std::printf("validation: %zu/%zu violation traces get the intended "
              "verdict from the fix\n",
              Ok, S.numObjects());

  // Step 2b's witness machinery: compare the fix against the ground-truth
  // protocol. If the languages differ over this alphabet, the shortest
  // disagreeing trace is exactly the kind of evidence the author would
  // inspect.
  Automaton Truth = compileRegexOrDie(Model.CorrectRegex, T);
  Dfa FixedD = Dfa::determinize(FixedFA, Alphabet, T);
  Dfa TruthD = Dfa::determinize(Truth, Alphabet, T);
  std::optional<Trace> Witness = Dfa::shortestDifference(FixedD, TruthD);
  if (Witness && FixedD.accepts(*Witness)) {
    // A wrongly *accepted* trace. Testing a too-permissive spec can never
    // surface it: the verifier only reports what the spec rejects. The
    // remedy is to put the accepted scenarios under the same lens.
    std::printf("\nremaining witness: %s is wrongly accepted.\n"
                "it never showed up as a violation (the buggy spec accepts "
                "it), so round 2\nclusters the ACCEPTED scenarios too:\n",
                Witness->render(T).c_str());

    Automaton Ref2 = makeUnorderedFA(templateAlphabet(R.Accepted.traces()),
                                     R.Accepted.table());
    Session S2(std::move(R.Accepted), std::move(Ref2));
    LabelId Good2 = S2.internLabel("good");
    LabelId Bad2 = S2.internLabel("bad");
    // The popen-and-fclose concept is the wrongly accepted family.
    if (std::optional<Session::NodeId> Fishy =
            conceptOfEvents(S2, {"popen", "fclose"})) {
      size_t N2 = S2.labelTraces(*Fishy, TraceSelect::Unlabeled, Bad2);
      std::printf("  label bad:  %zu accepted traces executing popen and "
                  "fclose\n",
                  N2);
    }
    S2.labelTraces(S2.lattice().top(), TraceSelect::Unlabeled, Good2);

    // The author views the Show FA summary of the bad traces...
    Automaton BadFA2 =
        S2.showFA(S2.lattice().top(), TraceSelect::WithLabel, Bad2);
    std::printf("  Show FA over the bad traces:\n%s",
                BadFA2.renderText(S2.table()).c_str());
    // ...recognizes the pattern ("a pipe closed with fclose"), and writes
    // the general rule to subtract — §2.1: summarizing violations with
    // FAs "makes it easier for the author to see how to fix the
    // specification". (Subtracting the learned FA itself would miss the
    // zero-read case no trace exhibited.)
    Automaton BadRule = compileRegexOrDie(
        "popen(v0) [fread(v0) | fwrite(v0)]* fclose(v0)", S2.table());
    Dfa Sub2 = Dfa::determinize(BadRule, Alphabet, S2.table());
    Dfa Fixed2 =
        Dfa::product(FixedD, Sub2.complemented(), /*WantUnion=*/false)
            .minimized();
    std::optional<Trace> Witness2 = Dfa::shortestDifference(Fixed2, TruthD);
    if (!Witness2) {
      std::printf("  after subtracting that rule, the fix is language-"
                  "equivalent to the true\n  protocol over the observed "
                  "alphabet.\n");
    } else {
      std::printf("  remaining difference (%s by the fix): %s\n"
                  "  — residual generalization gap of the trace-learned "
                  "FAs.\n",
                  Fixed2.accepts(*Witness2) ? "accepted" : "rejected",
                  Witness2->render(S2.table()).c_str());
    }
  } else if (Witness) {
    std::printf("\nremaining witness: %s is wrongly rejected "
                "(generalization gap of the\ntrace-learned good FA).\n",
                Witness->render(T).c_str());
  } else {
    std::printf("\nthe fix is language-equivalent to the true protocol "
                "over the observed alphabet\n");
  }
  return 0;
}
