//===- examples/program_corpus.cpp - Why frequency can't debug specs -------===//
//
// Part of the Cable reproduction of "Debugging Temporal Specifications with
// Concept Analysis" (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's §6 observation, reproduced at the source: "we found that
// some buggy traces occurred so frequently that suppressing them
// [statistically] would also suppress valid traces."
//
// This example synthesizes a corpus of toy *programs* (not traces): each
// program embeds several scenario sites, and a buggy site is buggy in
// every run that reaches it — exactly how real bugs recur. It then mines
// a specification from the corpus and tries to debug it two ways:
//
//   1. coring, at every threshold — fails, because the recurring buggy
//      scenarios are as frequent as legitimate rare behaviors;
//   2. Cable — clusters the scenarios, labels concepts, re-learns; works.
//
//===----------------------------------------------------------------------===//

#include "cable/Session.h"
#include "cable/Strategies.h"
#include "learner/Coring.h"
#include "learner/SkStrings.h"
#include "miner/ScenarioExtractor.h"
#include "program/Synthesize.h"
#include "support/RNG.h"
#include "workload/Oracle.h"
#include "workload/ReferenceFA.h"

#include <cstdio>

using namespace cable;

int main() {
  ProtocolModel Model = protocolByName("XFreeGC");
  EventTable Table;
  RNG Rand(0xC0DE);

  // -- A corpus of programs, some with buggy sites --------------------------
  CorpusOptions Options;
  Options.NumPrograms = 14;
  Options.RunsPerProgram = 3;
  Options.SitesPerProgram = 3;
  Options.BuggySiteRate = 0.25;
  TraceSet Runs = generateProgramCorpus(Model, Table, Rand, Options);
  std::printf("corpus: %zu runs of %zu synthesized programs "
              "(%zu scenario sites each, %.0f%% of sites buggy)\n",
              Runs.size(), Options.NumPrograms, Options.SitesPerProgram,
              Options.BuggySiteRate * 100);

  ExtractorOptions Extract;
  Extract.SeedNames = Model.Seeds;
  Extract.TransitiveValues = true;
  TraceSet Scenarios = extractScenarios(Runs, Extract);
  TraceClasses Classes = Scenarios.computeClasses();
  Oracle Truth(Model, Scenarios.table());

  // The key frequency structure: buggy classes with high multiplicity.
  size_t BadOccurrences = 0, BadClasses = 0, MaxBadMult = 0;
  size_t RareGoodClasses = 0;
  for (size_t C = 0; C < Classes.numClasses(); ++C) {
    bool Correct =
        Truth.isCorrect(Classes.Representatives[C], Scenarios.table());
    if (!Correct) {
      ++BadClasses;
      BadOccurrences += Classes.Multiplicity[C];
      MaxBadMult = std::max(MaxBadMult, size_t(Classes.Multiplicity[C]));
    } else if (Classes.Multiplicity[C] <= 2) {
      ++RareGoodClasses;
    }
  }
  std::printf("scenarios: %zu (%zu classes); %zu erroneous occurrences in "
              "%zu classes;\n  most frequent buggy class occurs %zu times; "
              "%zu correct classes occur <= 2 times\n\n",
              Scenarios.size(), Classes.numClasses(), BadOccurrences,
              BadClasses, MaxBadMult, RareGoodClasses);

  // -- Attempt 1: coring ----------------------------------------------------
  CountedAutomaton PTA = CountedAutomaton::buildPTA(Scenarios.traces());
  std::printf("attempt 1, coring the mined automaton:\n");
  bool AnyThresholdWorks = false;
  for (double Threshold : {0.02, 0.05, 0.10, 0.20, 0.40}) {
    Automaton Cored = coreAutomaton(PTA, Scenarios.table(), Threshold);
    size_t GoodKept = 0, Goods = 0, BadDropped = 0, Bads = 0;
    for (size_t C = 0; C < Classes.numClasses(); ++C) {
      const Trace &T = Classes.Representatives[C];
      bool Correct = Truth.isCorrect(T, Scenarios.table());
      bool Accepted = Cored.accepts(T, Scenarios.table());
      if (Correct) {
        ++Goods;
        GoodKept += Accepted;
      } else {
        ++Bads;
        BadDropped += !Accepted;
      }
    }
    bool Works = GoodKept == Goods && BadDropped == Bads;
    AnyThresholdWorks |= Works;
    std::printf("  threshold %.2f: keeps %zu/%zu correct classes, drops "
                "%zu/%zu buggy ones%s\n",
                Threshold, GoodKept, Goods, BadDropped, Bads,
                Works ? "  <- perfect?!" : "");
  }
  std::printf("  => %s\n\n",
              AnyThresholdWorks
                  ? "a threshold happened to work on this corpus"
                  : "no threshold both keeps all correct and drops all "
                    "buggy behavior (the paper's point)");

  // -- Attempt 2: Cable -----------------------------------------------------
  std::printf("attempt 2, Cable:\n");
  Automaton Ref = makeProtocolReferenceFA(Scenarios.traces(),
                                          Scenarios.table(), Model);
  Session S(std::move(Scenarios), std::move(Ref));
  ReferenceLabeling Target = Truth.referenceLabeling(S);
  ExpertSimStrategy Expert;
  StrategyCost Cost = Expert.run(S, Target);
  std::printf("  expert labeling: %zu ops over %zu concepts (%s); "
              "baseline would cost %zu\n",
              Cost.total(), S.lattice().size(),
              Cost.Finished ? "finished" : "FAILED", 2 * S.numObjects());
  if (!Cost.Finished)
    return 1;

  LabelId Good = S.internLabel("good");
  std::vector<Trace> GoodTraces;
  for (size_t Obj : S.objectsWithLabel(Good))
    GoodTraces.push_back(S.object(Obj));
  SkStringsOptions Learn;
  Learn.S = 1.0;
  Automaton Fixed = learnSkStringsFA(GoodTraces, S.table(), Learn);

  size_t Right = 0;
  for (size_t Obj = 0; Obj < S.numObjects(); ++Obj) {
    bool IsGood = *S.labelOf(Obj) == Good;
    Right += Fixed.accepts(S.object(Obj), S.table()) == IsGood;
  }
  std::printf("  debugged spec classifies %zu/%zu scenario classes "
              "correctly\n",
              Right, S.numObjects());
  return 0;
}
