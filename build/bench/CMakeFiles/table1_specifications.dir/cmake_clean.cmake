file(REMOVE_RECURSE
  "CMakeFiles/table1_specifications.dir/table1_specifications.cpp.o"
  "CMakeFiles/table1_specifications.dir/table1_specifications.cpp.o.d"
  "table1_specifications"
  "table1_specifications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_specifications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
