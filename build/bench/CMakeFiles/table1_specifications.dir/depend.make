# Empty dependencies file for table1_specifications.
# This may be replaced when dependencies are built.
