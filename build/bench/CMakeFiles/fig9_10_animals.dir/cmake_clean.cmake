file(REMOVE_RECURSE
  "CMakeFiles/fig9_10_animals.dir/fig9_10_animals.cpp.o"
  "CMakeFiles/fig9_10_animals.dir/fig9_10_animals.cpp.o.d"
  "fig9_10_animals"
  "fig9_10_animals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_10_animals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
