# Empty dependencies file for fig9_10_animals.
# This may be replaced when dependencies are built.
