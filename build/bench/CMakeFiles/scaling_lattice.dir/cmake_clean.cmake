file(REMOVE_RECURSE
  "CMakeFiles/scaling_lattice.dir/scaling_lattice.cpp.o"
  "CMakeFiles/scaling_lattice.dir/scaling_lattice.cpp.o.d"
  "scaling_lattice"
  "scaling_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
