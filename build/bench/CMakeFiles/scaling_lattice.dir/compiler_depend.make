# Empty compiler generated dependencies file for scaling_lattice.
# This may be replaced when dependencies are built.
