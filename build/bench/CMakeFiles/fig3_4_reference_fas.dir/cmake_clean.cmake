file(REMOVE_RECURSE
  "CMakeFiles/fig3_4_reference_fas.dir/fig3_4_reference_fas.cpp.o"
  "CMakeFiles/fig3_4_reference_fas.dir/fig3_4_reference_fas.cpp.o.d"
  "fig3_4_reference_fas"
  "fig3_4_reference_fas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_4_reference_fas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
