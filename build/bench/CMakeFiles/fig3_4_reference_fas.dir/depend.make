# Empty dependencies file for fig3_4_reference_fas.
# This may be replaced when dependencies are built.
