file(REMOVE_RECURSE
  "CMakeFiles/ablation_coring.dir/ablation_coring.cpp.o"
  "CMakeFiles/ablation_coring.dir/ablation_coring.cpp.o.d"
  "ablation_coring"
  "ablation_coring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
