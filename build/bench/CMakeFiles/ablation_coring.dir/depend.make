# Empty dependencies file for ablation_coring.
# This may be replaced when dependencies are built.
