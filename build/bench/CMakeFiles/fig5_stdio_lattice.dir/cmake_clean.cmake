file(REMOVE_RECURSE
  "CMakeFiles/fig5_stdio_lattice.dir/fig5_stdio_lattice.cpp.o"
  "CMakeFiles/fig5_stdio_lattice.dir/fig5_stdio_lattice.cpp.o.d"
  "fig5_stdio_lattice"
  "fig5_stdio_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_stdio_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
