# Empty dependencies file for fig5_stdio_lattice.
# This may be replaced when dependencies are built.
