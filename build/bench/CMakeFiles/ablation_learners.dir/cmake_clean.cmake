file(REMOVE_RECURSE
  "CMakeFiles/ablation_learners.dir/ablation_learners.cpp.o"
  "CMakeFiles/ablation_learners.dir/ablation_learners.cpp.o.d"
  "ablation_learners"
  "ablation_learners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_learners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
