file(REMOVE_RECURSE
  "CMakeFiles/table3_labeling_cost.dir/table3_labeling_cost.cpp.o"
  "CMakeFiles/table3_labeling_cost.dir/table3_labeling_cost.cpp.o.d"
  "table3_labeling_cost"
  "table3_labeling_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_labeling_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
