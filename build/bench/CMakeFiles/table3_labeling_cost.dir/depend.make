# Empty dependencies file for table3_labeling_cost.
# This may be replaced when dependencies are built.
