file(REMOVE_RECURSE
  "CMakeFiles/ablation_reference_fa.dir/ablation_reference_fa.cpp.o"
  "CMakeFiles/ablation_reference_fa.dir/ablation_reference_fa.cpp.o.d"
  "ablation_reference_fa"
  "ablation_reference_fa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reference_fa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
