# Empty dependencies file for ablation_reference_fa.
# This may be replaced when dependencies are built.
