
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_autofocus.cpp" "bench/CMakeFiles/ablation_autofocus.dir/ablation_autofocus.cpp.o" "gcc" "bench/CMakeFiles/ablation_autofocus.dir/ablation_autofocus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/cable_program.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cable_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cable/CMakeFiles/cable_core.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/cable_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/miner/CMakeFiles/cable_miner.dir/DependInfo.cmake"
  "/root/repo/build/src/learner/CMakeFiles/cable_learner.dir/DependInfo.cmake"
  "/root/repo/build/src/concepts/CMakeFiles/cable_concepts.dir/DependInfo.cmake"
  "/root/repo/build/src/fa/CMakeFiles/cable_fa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cable_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cable_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
