file(REMOVE_RECURSE
  "CMakeFiles/ablation_autofocus.dir/ablation_autofocus.cpp.o"
  "CMakeFiles/ablation_autofocus.dir/ablation_autofocus.cpp.o.d"
  "ablation_autofocus"
  "ablation_autofocus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_autofocus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
