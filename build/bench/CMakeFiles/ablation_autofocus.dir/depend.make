# Empty dependencies file for ablation_autofocus.
# This may be replaced when dependencies are built.
