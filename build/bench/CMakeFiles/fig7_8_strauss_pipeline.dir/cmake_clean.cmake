file(REMOVE_RECURSE
  "CMakeFiles/fig7_8_strauss_pipeline.dir/fig7_8_strauss_pipeline.cpp.o"
  "CMakeFiles/fig7_8_strauss_pipeline.dir/fig7_8_strauss_pipeline.cpp.o.d"
  "fig7_8_strauss_pipeline"
  "fig7_8_strauss_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_8_strauss_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
