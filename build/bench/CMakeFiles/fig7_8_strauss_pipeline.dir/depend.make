# Empty dependencies file for fig7_8_strauss_pipeline.
# This may be replaced when dependencies are built.
