# Empty dependencies file for fig1_6_stdio_specs.
# This may be replaced when dependencies are built.
