file(REMOVE_RECURSE
  "CMakeFiles/fig1_6_stdio_specs.dir/fig1_6_stdio_specs.cpp.o"
  "CMakeFiles/fig1_6_stdio_specs.dir/fig1_6_stdio_specs.cpp.o.d"
  "fig1_6_stdio_specs"
  "fig1_6_stdio_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_6_stdio_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
