# Empty compiler generated dependencies file for spec-lint.
# This may be replaced when dependencies are built.
