file(REMOVE_RECURSE
  "CMakeFiles/spec-lint.dir/spec-lint.cpp.o"
  "CMakeFiles/spec-lint.dir/spec-lint.cpp.o.d"
  "spec-lint"
  "spec-lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec-lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
