file(REMOVE_RECURSE
  "CMakeFiles/cable-cli.dir/cable-cli.cpp.o"
  "CMakeFiles/cable-cli.dir/cable-cli.cpp.o.d"
  "cable-cli"
  "cable-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
