# Empty dependencies file for cable-cli.
# This may be replaced when dependencies are built.
