# Empty dependencies file for debug_mined_spec.
# This may be replaced when dependencies are built.
