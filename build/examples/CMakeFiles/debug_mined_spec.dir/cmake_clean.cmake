file(REMOVE_RECURSE
  "CMakeFiles/debug_mined_spec.dir/debug_mined_spec.cpp.o"
  "CMakeFiles/debug_mined_spec.dir/debug_mined_spec.cpp.o.d"
  "debug_mined_spec"
  "debug_mined_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_mined_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
