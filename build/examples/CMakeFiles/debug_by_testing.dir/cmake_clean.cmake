file(REMOVE_RECURSE
  "CMakeFiles/debug_by_testing.dir/debug_by_testing.cpp.o"
  "CMakeFiles/debug_by_testing.dir/debug_by_testing.cpp.o.d"
  "debug_by_testing"
  "debug_by_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_by_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
