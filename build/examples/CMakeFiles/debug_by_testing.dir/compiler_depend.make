# Empty compiler generated dependencies file for debug_by_testing.
# This may be replaced when dependencies are built.
