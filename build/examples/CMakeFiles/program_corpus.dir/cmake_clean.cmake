file(REMOVE_RECURSE
  "CMakeFiles/program_corpus.dir/program_corpus.cpp.o"
  "CMakeFiles/program_corpus.dir/program_corpus.cpp.o.d"
  "program_corpus"
  "program_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
