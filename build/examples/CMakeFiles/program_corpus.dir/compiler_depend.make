# Empty compiler generated dependencies file for program_corpus.
# This may be replaced when dependencies are built.
