# Empty compiler generated dependencies file for x11_audit.
# This may be replaced when dependencies are built.
