file(REMOVE_RECURSE
  "CMakeFiles/x11_audit.dir/x11_audit.cpp.o"
  "CMakeFiles/x11_audit.dir/x11_audit.cpp.o.d"
  "x11_audit"
  "x11_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x11_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
