# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cable_tests[1]_include.cmake")
add_test(cable_cli_smoke "bash" "-c" "set -e;     out=\$(printf 'status
ls
label c1 good
status
suggest c2
save /root/repo/build/tests/cli_labels.txt
load /root/repo/build/tests/cli_labels.txt
check good
dot /root/repo/build/tests/cli_lattice.dot
oracle
status
quit
' | /root/repo/build/tools/cable-cli --protocol stdio);     echo \"\$out\" | grep -q 'unique traces';     echo \"\$out\" | grep -q 'labeled .* trace(s)';     echo \"\$out\" | grep -q 'expert simulation';     echo \"\$out\" | grep -q 'labels loaded';     test -s /root/repo/build/tests/cli_lattice.dot;     grep -q digraph /root/repo/build/tests/cli_lattice.dot")
set_tests_properties(cable_cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;47;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cable_cli_traces_file "bash" "-c" "set -e;     printf 'fopen(v0) fclose(v0)\\npopen(v0) pclose(v0)\\n' > /root/repo/build/tests/cli_traces.txt;     printf 'start q0\\naccept q0\\nq0 <any> q0\\n' > /root/repo/build/tests/cli_ref.fa;     out=\$(printf 'status
quit
' | /root/repo/build/tools/cable-cli --traces /root/repo/build/tests/cli_traces.txt --ref-file /root/repo/build/tests/cli_ref.fa);     echo \"\$out\" | grep -q '2 unique traces'")
set_tests_properties(cable_cli_traces_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;57;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(spec_lint_reports_violations "bash" "-c" "set -e;     out=\$(/root/repo/build/tools/spec-lint --spec /root/repo/examples/data/stdio_buggy.fa --traces /root/repo/examples/data/stdio_traces.txt) && exit 1 || true;     echo \"\$out\" | grep -q '6 violation(s)';     echo \"\$out\" | grep -q 'maximal clusters'")
set_tests_properties(spec_lint_reports_violations PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;64;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(spec_lint_clean_exit_zero "bash" "-c" "set -e;     printf 'fopen(v0) fclose(v0)\\n' > /root/repo/build/tests/lint_clean.txt;     /root/repo/build/tools/spec-lint --spec-regex 'fopen(v0) fclose(v0)' --traces /root/repo/build/tests/lint_clean.txt | grep -q '0 violation(s)'")
set_tests_properties(spec_lint_clean_exit_zero PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;70;add_test;/root/repo/tests/CMakeLists.txt;0;")
