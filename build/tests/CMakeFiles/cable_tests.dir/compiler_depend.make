# Empty compiler generated dependencies file for cable_tests.
# This may be replaced when dependencies are built.
