
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cable/AdvisorTest.cpp" "tests/CMakeFiles/cable_tests.dir/cable/AdvisorTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/cable/AdvisorTest.cpp.o.d"
  "/root/repo/tests/cable/PersistenceTest.cpp" "tests/CMakeFiles/cable_tests.dir/cable/PersistenceTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/cable/PersistenceTest.cpp.o.d"
  "/root/repo/tests/cable/SessionModelTest.cpp" "tests/CMakeFiles/cable_tests.dir/cable/SessionModelTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/cable/SessionModelTest.cpp.o.d"
  "/root/repo/tests/cable/SessionTest.cpp" "tests/CMakeFiles/cable_tests.dir/cable/SessionTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/cable/SessionTest.cpp.o.d"
  "/root/repo/tests/cable/StrategiesTest.cpp" "tests/CMakeFiles/cable_tests.dir/cable/StrategiesTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/cable/StrategiesTest.cpp.o.d"
  "/root/repo/tests/cable/WellFormedTest.cpp" "tests/CMakeFiles/cable_tests.dir/cable/WellFormedTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/cable/WellFormedTest.cpp.o.d"
  "/root/repo/tests/concepts/BuildersTest.cpp" "tests/CMakeFiles/cable_tests.dir/concepts/BuildersTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/concepts/BuildersTest.cpp.o.d"
  "/root/repo/tests/concepts/ContextTest.cpp" "tests/CMakeFiles/cable_tests.dir/concepts/ContextTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/concepts/ContextTest.cpp.o.d"
  "/root/repo/tests/concepts/LatticeTest.cpp" "tests/CMakeFiles/cable_tests.dir/concepts/LatticeTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/concepts/LatticeTest.cpp.o.d"
  "/root/repo/tests/fa/AutomatonTest.cpp" "tests/CMakeFiles/cable_tests.dir/fa/AutomatonTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/fa/AutomatonTest.cpp.o.d"
  "/root/repo/tests/fa/DfaTest.cpp" "tests/CMakeFiles/cable_tests.dir/fa/DfaTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/fa/DfaTest.cpp.o.d"
  "/root/repo/tests/fa/FuzzParsersTest.cpp" "tests/CMakeFiles/cable_tests.dir/fa/FuzzParsersTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/fa/FuzzParsersTest.cpp.o.d"
  "/root/repo/tests/fa/LabelTest.cpp" "tests/CMakeFiles/cable_tests.dir/fa/LabelTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/fa/LabelTest.cpp.o.d"
  "/root/repo/tests/fa/MinimizationTest.cpp" "tests/CMakeFiles/cable_tests.dir/fa/MinimizationTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/fa/MinimizationTest.cpp.o.d"
  "/root/repo/tests/fa/ParseTest.cpp" "tests/CMakeFiles/cable_tests.dir/fa/ParseTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/fa/ParseTest.cpp.o.d"
  "/root/repo/tests/fa/RegexTest.cpp" "tests/CMakeFiles/cable_tests.dir/fa/RegexTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/fa/RegexTest.cpp.o.d"
  "/root/repo/tests/fa/TemplatesTest.cpp" "tests/CMakeFiles/cable_tests.dir/fa/TemplatesTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/fa/TemplatesTest.cpp.o.d"
  "/root/repo/tests/integration/EndToEndTest.cpp" "tests/CMakeFiles/cable_tests.dir/integration/EndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/integration/EndToEndTest.cpp.o.d"
  "/root/repo/tests/integration/PipelineTest.cpp" "tests/CMakeFiles/cable_tests.dir/integration/PipelineTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/integration/PipelineTest.cpp.o.d"
  "/root/repo/tests/learner/CoringTest.cpp" "tests/CMakeFiles/cable_tests.dir/learner/CoringTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/learner/CoringTest.cpp.o.d"
  "/root/repo/tests/learner/CountedAutomatonTest.cpp" "tests/CMakeFiles/cable_tests.dir/learner/CountedAutomatonTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/learner/CountedAutomatonTest.cpp.o.d"
  "/root/repo/tests/learner/KTailsTest.cpp" "tests/CMakeFiles/cable_tests.dir/learner/KTailsTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/learner/KTailsTest.cpp.o.d"
  "/root/repo/tests/learner/SkStringsTest.cpp" "tests/CMakeFiles/cable_tests.dir/learner/SkStringsTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/learner/SkStringsTest.cpp.o.d"
  "/root/repo/tests/miner/ExtractorTest.cpp" "tests/CMakeFiles/cable_tests.dir/miner/ExtractorTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/miner/ExtractorTest.cpp.o.d"
  "/root/repo/tests/miner/MinerTest.cpp" "tests/CMakeFiles/cable_tests.dir/miner/MinerTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/miner/MinerTest.cpp.o.d"
  "/root/repo/tests/program/ProgramTest.cpp" "tests/CMakeFiles/cable_tests.dir/program/ProgramTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/program/ProgramTest.cpp.o.d"
  "/root/repo/tests/support/BitVectorTest.cpp" "tests/CMakeFiles/cable_tests.dir/support/BitVectorTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/support/BitVectorTest.cpp.o.d"
  "/root/repo/tests/support/RNGTest.cpp" "tests/CMakeFiles/cable_tests.dir/support/RNGTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/support/RNGTest.cpp.o.d"
  "/root/repo/tests/support/StringUtilTest.cpp" "tests/CMakeFiles/cable_tests.dir/support/StringUtilTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/support/StringUtilTest.cpp.o.d"
  "/root/repo/tests/trace/EventTableTest.cpp" "tests/CMakeFiles/cable_tests.dir/trace/EventTableTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/trace/EventTableTest.cpp.o.d"
  "/root/repo/tests/trace/TraceSetTest.cpp" "tests/CMakeFiles/cable_tests.dir/trace/TraceSetTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/trace/TraceSetTest.cpp.o.d"
  "/root/repo/tests/trace/TraceTest.cpp" "tests/CMakeFiles/cable_tests.dir/trace/TraceTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/trace/TraceTest.cpp.o.d"
  "/root/repo/tests/verifier/VerifierTest.cpp" "tests/CMakeFiles/cable_tests.dir/verifier/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/verifier/VerifierTest.cpp.o.d"
  "/root/repo/tests/workload/ProtocolsTest.cpp" "tests/CMakeFiles/cable_tests.dir/workload/ProtocolsTest.cpp.o" "gcc" "tests/CMakeFiles/cable_tests.dir/workload/ProtocolsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/program/CMakeFiles/cable_program.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cable_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cable/CMakeFiles/cable_core.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/cable_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/miner/CMakeFiles/cable_miner.dir/DependInfo.cmake"
  "/root/repo/build/src/learner/CMakeFiles/cable_learner.dir/DependInfo.cmake"
  "/root/repo/build/src/concepts/CMakeFiles/cable_concepts.dir/DependInfo.cmake"
  "/root/repo/build/src/fa/CMakeFiles/cable_fa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cable_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cable_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
