# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("trace")
subdirs("fa")
subdirs("concepts")
subdirs("learner")
subdirs("miner")
subdirs("verifier")
subdirs("cable")
subdirs("workload")
subdirs("program")
