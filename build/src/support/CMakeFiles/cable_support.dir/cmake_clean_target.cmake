file(REMOVE_RECURSE
  "libcable_support.a"
)
