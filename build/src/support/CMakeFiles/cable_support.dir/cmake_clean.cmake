file(REMOVE_RECURSE
  "CMakeFiles/cable_support.dir/BitVector.cpp.o"
  "CMakeFiles/cable_support.dir/BitVector.cpp.o.d"
  "CMakeFiles/cable_support.dir/Dot.cpp.o"
  "CMakeFiles/cable_support.dir/Dot.cpp.o.d"
  "CMakeFiles/cable_support.dir/StringUtil.cpp.o"
  "CMakeFiles/cable_support.dir/StringUtil.cpp.o.d"
  "libcable_support.a"
  "libcable_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
