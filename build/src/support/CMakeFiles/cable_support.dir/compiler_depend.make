# Empty compiler generated dependencies file for cable_support.
# This may be replaced when dependencies are built.
