file(REMOVE_RECURSE
  "CMakeFiles/cable_core.dir/Advisor.cpp.o"
  "CMakeFiles/cable_core.dir/Advisor.cpp.o.d"
  "CMakeFiles/cable_core.dir/Session.cpp.o"
  "CMakeFiles/cable_core.dir/Session.cpp.o.d"
  "CMakeFiles/cable_core.dir/Strategies.cpp.o"
  "CMakeFiles/cable_core.dir/Strategies.cpp.o.d"
  "CMakeFiles/cable_core.dir/WellFormed.cpp.o"
  "CMakeFiles/cable_core.dir/WellFormed.cpp.o.d"
  "libcable_core.a"
  "libcable_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
