# Empty compiler generated dependencies file for cable_core.
# This may be replaced when dependencies are built.
