
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cable/Advisor.cpp" "src/cable/CMakeFiles/cable_core.dir/Advisor.cpp.o" "gcc" "src/cable/CMakeFiles/cable_core.dir/Advisor.cpp.o.d"
  "/root/repo/src/cable/Session.cpp" "src/cable/CMakeFiles/cable_core.dir/Session.cpp.o" "gcc" "src/cable/CMakeFiles/cable_core.dir/Session.cpp.o.d"
  "/root/repo/src/cable/Strategies.cpp" "src/cable/CMakeFiles/cable_core.dir/Strategies.cpp.o" "gcc" "src/cable/CMakeFiles/cable_core.dir/Strategies.cpp.o.d"
  "/root/repo/src/cable/WellFormed.cpp" "src/cable/CMakeFiles/cable_core.dir/WellFormed.cpp.o" "gcc" "src/cable/CMakeFiles/cable_core.dir/WellFormed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/concepts/CMakeFiles/cable_concepts.dir/DependInfo.cmake"
  "/root/repo/build/src/learner/CMakeFiles/cable_learner.dir/DependInfo.cmake"
  "/root/repo/build/src/fa/CMakeFiles/cable_fa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cable_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cable_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
