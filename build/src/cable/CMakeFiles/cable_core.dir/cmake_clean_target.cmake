file(REMOVE_RECURSE
  "libcable_core.a"
)
