file(REMOVE_RECURSE
  "libcable_concepts.a"
)
