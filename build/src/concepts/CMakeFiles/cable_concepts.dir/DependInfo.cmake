
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/concepts/Context.cpp" "src/concepts/CMakeFiles/cable_concepts.dir/Context.cpp.o" "gcc" "src/concepts/CMakeFiles/cable_concepts.dir/Context.cpp.o.d"
  "/root/repo/src/concepts/GodinBuilder.cpp" "src/concepts/CMakeFiles/cable_concepts.dir/GodinBuilder.cpp.o" "gcc" "src/concepts/CMakeFiles/cable_concepts.dir/GodinBuilder.cpp.o.d"
  "/root/repo/src/concepts/Lattice.cpp" "src/concepts/CMakeFiles/cable_concepts.dir/Lattice.cpp.o" "gcc" "src/concepts/CMakeFiles/cable_concepts.dir/Lattice.cpp.o.d"
  "/root/repo/src/concepts/LindigBuilder.cpp" "src/concepts/CMakeFiles/cable_concepts.dir/LindigBuilder.cpp.o" "gcc" "src/concepts/CMakeFiles/cable_concepts.dir/LindigBuilder.cpp.o.d"
  "/root/repo/src/concepts/NextClosureBuilder.cpp" "src/concepts/CMakeFiles/cable_concepts.dir/NextClosureBuilder.cpp.o" "gcc" "src/concepts/CMakeFiles/cable_concepts.dir/NextClosureBuilder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cable_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
