# Empty compiler generated dependencies file for cable_concepts.
# This may be replaced when dependencies are built.
