file(REMOVE_RECURSE
  "CMakeFiles/cable_concepts.dir/Context.cpp.o"
  "CMakeFiles/cable_concepts.dir/Context.cpp.o.d"
  "CMakeFiles/cable_concepts.dir/GodinBuilder.cpp.o"
  "CMakeFiles/cable_concepts.dir/GodinBuilder.cpp.o.d"
  "CMakeFiles/cable_concepts.dir/Lattice.cpp.o"
  "CMakeFiles/cable_concepts.dir/Lattice.cpp.o.d"
  "CMakeFiles/cable_concepts.dir/LindigBuilder.cpp.o"
  "CMakeFiles/cable_concepts.dir/LindigBuilder.cpp.o.d"
  "CMakeFiles/cable_concepts.dir/NextClosureBuilder.cpp.o"
  "CMakeFiles/cable_concepts.dir/NextClosureBuilder.cpp.o.d"
  "libcable_concepts.a"
  "libcable_concepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
