
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verifier/Verifier.cpp" "src/verifier/CMakeFiles/cable_verifier.dir/Verifier.cpp.o" "gcc" "src/verifier/CMakeFiles/cable_verifier.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/miner/CMakeFiles/cable_miner.dir/DependInfo.cmake"
  "/root/repo/build/src/fa/CMakeFiles/cable_fa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cable_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cable_support.dir/DependInfo.cmake"
  "/root/repo/build/src/learner/CMakeFiles/cable_learner.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
