file(REMOVE_RECURSE
  "libcable_verifier.a"
)
