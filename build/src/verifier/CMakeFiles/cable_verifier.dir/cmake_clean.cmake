file(REMOVE_RECURSE
  "CMakeFiles/cable_verifier.dir/Verifier.cpp.o"
  "CMakeFiles/cable_verifier.dir/Verifier.cpp.o.d"
  "libcable_verifier.a"
  "libcable_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
