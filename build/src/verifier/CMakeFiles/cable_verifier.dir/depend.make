# Empty dependencies file for cable_verifier.
# This may be replaced when dependencies are built.
