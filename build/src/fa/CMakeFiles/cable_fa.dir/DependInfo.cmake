
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fa/Automaton.cpp" "src/fa/CMakeFiles/cable_fa.dir/Automaton.cpp.o" "gcc" "src/fa/CMakeFiles/cable_fa.dir/Automaton.cpp.o.d"
  "/root/repo/src/fa/Dfa.cpp" "src/fa/CMakeFiles/cable_fa.dir/Dfa.cpp.o" "gcc" "src/fa/CMakeFiles/cable_fa.dir/Dfa.cpp.o.d"
  "/root/repo/src/fa/Label.cpp" "src/fa/CMakeFiles/cable_fa.dir/Label.cpp.o" "gcc" "src/fa/CMakeFiles/cable_fa.dir/Label.cpp.o.d"
  "/root/repo/src/fa/Parse.cpp" "src/fa/CMakeFiles/cable_fa.dir/Parse.cpp.o" "gcc" "src/fa/CMakeFiles/cable_fa.dir/Parse.cpp.o.d"
  "/root/repo/src/fa/Regex.cpp" "src/fa/CMakeFiles/cable_fa.dir/Regex.cpp.o" "gcc" "src/fa/CMakeFiles/cable_fa.dir/Regex.cpp.o.d"
  "/root/repo/src/fa/Templates.cpp" "src/fa/CMakeFiles/cable_fa.dir/Templates.cpp.o" "gcc" "src/fa/CMakeFiles/cable_fa.dir/Templates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/cable_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cable_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
