file(REMOVE_RECURSE
  "CMakeFiles/cable_fa.dir/Automaton.cpp.o"
  "CMakeFiles/cable_fa.dir/Automaton.cpp.o.d"
  "CMakeFiles/cable_fa.dir/Dfa.cpp.o"
  "CMakeFiles/cable_fa.dir/Dfa.cpp.o.d"
  "CMakeFiles/cable_fa.dir/Label.cpp.o"
  "CMakeFiles/cable_fa.dir/Label.cpp.o.d"
  "CMakeFiles/cable_fa.dir/Parse.cpp.o"
  "CMakeFiles/cable_fa.dir/Parse.cpp.o.d"
  "CMakeFiles/cable_fa.dir/Regex.cpp.o"
  "CMakeFiles/cable_fa.dir/Regex.cpp.o.d"
  "CMakeFiles/cable_fa.dir/Templates.cpp.o"
  "CMakeFiles/cable_fa.dir/Templates.cpp.o.d"
  "libcable_fa.a"
  "libcable_fa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_fa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
