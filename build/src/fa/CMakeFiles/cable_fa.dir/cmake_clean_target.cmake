file(REMOVE_RECURSE
  "libcable_fa.a"
)
