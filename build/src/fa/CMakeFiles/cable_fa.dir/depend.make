# Empty dependencies file for cable_fa.
# This may be replaced when dependencies are built.
