# CMake generated Testfile for 
# Source directory: /root/repo/src/fa
# Build directory: /root/repo/build/src/fa
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
