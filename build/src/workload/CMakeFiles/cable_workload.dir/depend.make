# Empty dependencies file for cable_workload.
# This may be replaced when dependencies are built.
