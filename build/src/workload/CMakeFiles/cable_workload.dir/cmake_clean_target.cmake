file(REMOVE_RECURSE
  "libcable_workload.a"
)
