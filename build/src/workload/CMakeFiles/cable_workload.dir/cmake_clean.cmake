file(REMOVE_RECURSE
  "CMakeFiles/cable_workload.dir/Generator.cpp.o"
  "CMakeFiles/cable_workload.dir/Generator.cpp.o.d"
  "CMakeFiles/cable_workload.dir/Oracle.cpp.o"
  "CMakeFiles/cable_workload.dir/Oracle.cpp.o.d"
  "CMakeFiles/cable_workload.dir/Protocols.cpp.o"
  "CMakeFiles/cable_workload.dir/Protocols.cpp.o.d"
  "CMakeFiles/cable_workload.dir/ReferenceFA.cpp.o"
  "CMakeFiles/cable_workload.dir/ReferenceFA.cpp.o.d"
  "libcable_workload.a"
  "libcable_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
