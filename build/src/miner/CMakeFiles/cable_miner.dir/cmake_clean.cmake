file(REMOVE_RECURSE
  "CMakeFiles/cable_miner.dir/Miner.cpp.o"
  "CMakeFiles/cable_miner.dir/Miner.cpp.o.d"
  "CMakeFiles/cable_miner.dir/ScenarioExtractor.cpp.o"
  "CMakeFiles/cable_miner.dir/ScenarioExtractor.cpp.o.d"
  "libcable_miner.a"
  "libcable_miner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
