file(REMOVE_RECURSE
  "libcable_miner.a"
)
