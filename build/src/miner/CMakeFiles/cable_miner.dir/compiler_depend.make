# Empty compiler generated dependencies file for cable_miner.
# This may be replaced when dependencies are built.
