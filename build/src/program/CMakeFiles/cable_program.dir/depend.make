# Empty dependencies file for cable_program.
# This may be replaced when dependencies are built.
