file(REMOVE_RECURSE
  "libcable_program.a"
)
