file(REMOVE_RECURSE
  "CMakeFiles/cable_program.dir/Program.cpp.o"
  "CMakeFiles/cable_program.dir/Program.cpp.o.d"
  "CMakeFiles/cable_program.dir/Synthesize.cpp.o"
  "CMakeFiles/cable_program.dir/Synthesize.cpp.o.d"
  "libcable_program.a"
  "libcable_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
