file(REMOVE_RECURSE
  "CMakeFiles/cable_learner.dir/Coring.cpp.o"
  "CMakeFiles/cable_learner.dir/Coring.cpp.o.d"
  "CMakeFiles/cable_learner.dir/CountedAutomaton.cpp.o"
  "CMakeFiles/cable_learner.dir/CountedAutomaton.cpp.o.d"
  "CMakeFiles/cable_learner.dir/KTails.cpp.o"
  "CMakeFiles/cable_learner.dir/KTails.cpp.o.d"
  "CMakeFiles/cable_learner.dir/Quotient.cpp.o"
  "CMakeFiles/cable_learner.dir/Quotient.cpp.o.d"
  "CMakeFiles/cable_learner.dir/SkStrings.cpp.o"
  "CMakeFiles/cable_learner.dir/SkStrings.cpp.o.d"
  "libcable_learner.a"
  "libcable_learner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_learner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
