file(REMOVE_RECURSE
  "libcable_learner.a"
)
