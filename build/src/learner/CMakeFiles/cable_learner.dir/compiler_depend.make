# Empty compiler generated dependencies file for cable_learner.
# This may be replaced when dependencies are built.
