# Empty compiler generated dependencies file for cable_trace.
# This may be replaced when dependencies are built.
