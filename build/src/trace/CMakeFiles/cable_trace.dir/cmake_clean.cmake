file(REMOVE_RECURSE
  "CMakeFiles/cable_trace.dir/EventTable.cpp.o"
  "CMakeFiles/cable_trace.dir/EventTable.cpp.o.d"
  "CMakeFiles/cable_trace.dir/Trace.cpp.o"
  "CMakeFiles/cable_trace.dir/Trace.cpp.o.d"
  "CMakeFiles/cable_trace.dir/TraceSet.cpp.o"
  "CMakeFiles/cable_trace.dir/TraceSet.cpp.o.d"
  "libcable_trace.a"
  "libcable_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
