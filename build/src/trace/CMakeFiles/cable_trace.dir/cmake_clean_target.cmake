file(REMOVE_RECURSE
  "libcable_trace.a"
)
